/**
 * @file
 * pfitsd's persistent half: a content-addressed, crash-safe result
 * store on the local filesystem.
 *
 * One file per entry, named by the SimCache content hashes
 * (proto.hh:keyFileName), each holding a self-verifying
 * "pfits-store-v1" entry — a JSON line plus an FNV-1a checksum
 * trailer. Entries are published with writeFileAtomic(), so a reader
 * (including a recovering daemon) never sees a torn file; anything
 * that *does* fail verification — truncated by a crash mid-rename on
 * a weaker filesystem, bit-flipped by the disk, hand-edited — is moved
 * into a quarantine/ subdirectory, never deleted and never served.
 *
 * Capacity is a byte budget enforced by LRU eviction over the entry
 * files; recency starts from file mtimes at open() and follows get()
 * order afterwards. All methods are thread-safe.
 */

#ifndef POWERFITS_SVC_STORE_HH
#define POWERFITS_SVC_STORE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exp/simcache.hh"

namespace pfits
{

/** Point-in-time statistics of a ResultStore. */
struct StoreStats
{
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t quarantined = 0; //!< entries moved aside since open()
};

/** The on-disk content-addressed result store. */
class ResultStore
{
  public:
    /**
     * @param dir       directory entries live in (created on open)
     * @param max_bytes eviction budget; 0 = unbounded
     */
    ResultStore(std::string dir, uint64_t max_bytes = 0);

    /**
     * Create the directory if needed and run the recovery scan: every
     * "*.json" file is read and verified; entries whose checksum,
     * schema, or embedded key (against the filename) fail are moved to
     * quarantine/; stale "*.tmp.*" files from interrupted atomic
     * writes are deleted. @return false (with @p err) only on
     * environmental failure — an unusable directory, not bad entries.
     */
    bool open(std::string *err = nullptr);

    /**
     * Fetch the verbatim entry text under @p key. Re-verifies the
     * checksum on every read; a corrupt file is quarantined and
     * reported as a miss. @return true and fill @p entry_text on a hit.
     */
    bool get(const SimCacheKey &key, std::string *entry_text);

    /**
     * Publish @p entry_text (a complete encoded entry) under @p key.
     * The entry is verified first — its checksum must hold and its
     * embedded key must equal @p key — then written atomically and
     * the budget enforced. Overwrites an existing entry (the content
     * address makes old and new semantically identical).
     * @return false with @p err on verification or I/O failure.
     */
    bool put(const SimCacheKey &key, const std::string &entry_text,
             std::string *err = nullptr);

    /** @return true when an entry for @p key is resident. */
    bool contains(const SimCacheKey &key);

    StoreStats stats() const;

    const std::string &dir() const { return dir_; }

    /** The quarantine subdirectory path ("<dir>/quarantine"). */
    std::string quarantineDir() const;

  private:
    struct KeyHash
    {
        size_t operator()(const SimCacheKey &k) const;
    };

    struct Entry
    {
        uint64_t bytes = 0;
        std::list<SimCacheKey>::iterator lruPos;
    };

    std::string pathFor(const SimCacheKey &key) const;

    /** Move @p file_name aside into quarantine/. Caller holds mu_. */
    void quarantineLocked(const std::string &file_name);

    /** Drop LRU entries until within budget. Caller holds mu_. */
    void enforceBudgetLocked();

    /** Remove @p key from the index (file already gone/moved). */
    void dropIndexLocked(const SimCacheKey &key);

    std::string dir_;
    uint64_t maxBytes_;

    mutable std::mutex mu_;
    std::unordered_map<SimCacheKey, Entry, KeyHash> index_;
    std::list<SimCacheKey> lru_; //!< front = most recently used
    uint64_t bytes_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t quarantined_ = 0;
};

} // namespace pfits

#endif // POWERFITS_SVC_STORE_HH
