/**
 * @file
 * The pfitsd client: a SimService that consults a daemon's shared
 * result store before simulating, and *never* makes a run fail that
 * would have succeeded without a daemon.
 *
 * Degradation ladder for one request:
 *  1. local SimCache probe (free; no socket round trip on a warm key),
 *  2. daemon round trip — "sim" for suite benchmarks the daemon can
 *     rebuild by name, "get" for anything else — with bounded retries
 *     and jittered exponential backoff on transport failures,
 *  3. local simulation, on daemon-unavailable, protocol error,
 *     checksum mismatch, or request deadline expiry ("timeout"
 *     responses carry outcome "watchdog-expired").
 *
 * Every hop is observable: svc.requests, svc.retries, svc.timeouts,
 * svc.fallbacks, svc.store.{hits,misses} count this client's view;
 * recordServerStats() snapshots the daemon's
 * svc.store.{evictions,quarantined} gauges into the manifest. Results
 * fetched from the store are checksum-verified and then seeded into
 * the local SimCache, so manifests keep their "sims" provenance and
 * repeated keys stay in-process.
 */

#ifndef POWERFITS_SVC_CLIENT_HH
#define POWERFITS_SVC_CLIENT_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.hh"
#include "exp/simservice.hh"

namespace pfits
{

/** Client-side knobs (fromEnv() reads the PFITS_DAEMON* variables). */
struct SvcClientConfig
{
    std::string socketPath;     //!< empty = daemon disabled
    int connectTimeoutMs = 2'000;
    /**
     * Total transport budget for one request — retries and backoff
     * sleeps included — and the deadline_ms the server is told.
     */
    int requestTimeoutMs = 60'000;
    unsigned maxRetries = 2;       //!< transport retries per request
    int backoffBaseMs = 25;
    int backoffMaxMs = 1'000;
    uint64_t jitterSeed = 0x5fc1e9u; //!< deterministic backoff jitter

    /**
     * Populate from the environment: PFITS_DAEMON (socket path),
     * PFITS_DAEMON_TIMEOUT_MS, PFITS_DAEMON_RETRIES. @return a config
     * whose enabled() reflects whether PFITS_DAEMON was set.
     */
    static SvcClientConfig fromEnv();

    bool enabled() const { return !socketPath.empty(); }
};

/**
 * The daemon-backed SimService. Thread-safe: each request opens its
 * own connection (the Runner fans requests out over worker threads).
 */
class SvcClient final : public SimService
{
  public:
    explicit SvcClient(SvcClientConfig config);

    /** SimService: resolve via daemon, falling back to local. */
    SimResult simulate(const SimRequest &request) override;

    /**
     * Probe the daemon with a "hello" round trip. @return true when a
     * compatible daemon answered.
     */
    bool ping();

    /**
     * Fetch daemon store statistics and publish them as the
     * svc.store.evictions / svc.store.quarantined gauges (best
     * effort; a dead daemon leaves the gauges untouched).
     */
    void recordServerStats();

    const SvcClientConfig &config() const { return config_; }

  private:
    /**
     * One request/response round trip with retry and backoff.
     * @return false when every transport attempt failed.
     */
    bool roundTrip(const std::string &request, std::string *response);

    /**
     * Single connect/send/recv attempt bounded by @p budget_ms (the
     * receive leg adds a fixed grace so an orderly server-side
     * deadline expiry is still read as a structured response).
     */
    bool attempt(const std::string &request, std::string *response,
                 int budget_ms, std::string *err);

    /** Best-effort publish of a locally computed result. */
    void tryPut(const SimCacheKey &key, const SimResult &result);

    /** Compute locally, count a fallback, and best-effort put. */
    SimResult fallback(const SimRequest &request, bool try_put);

    int backoffDelayMs(unsigned attempt);

    SvcClientConfig config_;

    std::mutex rngMu_;
    Rng rng_; //!< backoff jitter; deterministic per config seed
};

} // namespace pfits

#endif // POWERFITS_SVC_CLIENT_HH
