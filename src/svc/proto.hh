/**
 * @file
 * The pfitsd wire protocol and store-entry format.
 *
 * Transport framing is a 4-byte big-endian length prefix followed by
 * one compact JSON document ("pfits-svc-v1"), exchanged over an
 * AF_UNIX stream socket. Every frame read or write takes an absolute
 * deadline so a hung peer costs a bounded wait, never a wedged thread.
 *
 * A *store entry* ("pfits-store-v1") is the unit of persistence and of
 * end-to-end integrity: one compact JSON line carrying the
 * content-addressed key and the full SimResult, terminated by a
 * "checksum 0x<fnv64>" trailer over the line — the same FNV-1a
 * checksum (fits/serialize.hh) that guards decoder configurations.
 * Whoever simulates encodes the entry once; the daemon stores and
 * serves the text verbatim, and every consumer re-verifies the trailer
 * before trusting a byte, so disk corruption and wire truncation are
 * indistinguishable from — and handled exactly like — a miss.
 */

#ifndef POWERFITS_SVC_PROTO_HH
#define POWERFITS_SVC_PROTO_HH

#include <cstdint>
#include <string>

#include "common/fault.hh"
#include "exp/simcache.hh"
#include "obs/json.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

namespace pfits
{

/** Wire-protocol schema tag carried in every request. */
inline constexpr const char *kSvcSchema = "pfits-svc-v1";

/** Store-entry schema tag carried in every persisted entry. */
inline constexpr const char *kStoreSchema = "pfits-store-v1";

/** Frames larger than this are rejected as malformed (64 MiB). */
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// --- framing -------------------------------------------------------------

/**
 * Write one length-prefixed frame to @p fd, finishing before
 * @p deadline_ms milliseconds elapse (0 = no deadline).
 * @return false (with @p err set) on error, timeout or closed peer.
 */
bool sendFrame(int fd, const std::string &payload, int deadline_ms,
               std::string *err);

/**
 * Read one length-prefixed frame from @p fd into @p payload under the
 * same deadline contract. A clean EOF before any byte sets @p err to
 * "eof".
 */
bool recvFrame(int fd, std::string *payload, int deadline_ms,
               std::string *err);

// --- key and config serialization ----------------------------------------

/** "0x<hex>" for a 64-bit hash (JSON numbers stop being exact at 2^53). */
std::string hexString(uint64_t v);

/** Parse a "0x<hex>" string. @return false on malformed input. */
bool parseHexU64(const std::string &s, uint64_t *out);

/** Emit @p key as {"program":"0x..","config":..,"faults":..,"observers":..}. */
void writeKeyJson(JsonWriter &w, const SimCacheKey &key);

/** Parse writeKeyJson output. @return false when fields are missing. */
bool parseKeyJson(const JsonValue &v, SimCacheKey *key);

/** The store-relative filename an entry for @p key lives under. */
std::string keyFileName(const SimCacheKey &key);

void writeCoreConfigJson(JsonWriter &w, const CoreConfig &core);
bool parseCoreConfigJson(const JsonValue &v, CoreConfig *core);

void writeFaultParamsJson(JsonWriter &w, const FaultParams &faults);
bool parseFaultParamsJson(const JsonValue &v, FaultParams *faults);

// --- result serialization ------------------------------------------------

/** Emit @p result (run counters, retries, intervals, trace path). */
void writeSimResultJson(JsonWriter &w, const SimResult &result);

/** Parse writeSimResultJson output. @return false on shape errors. */
bool parseSimResultJson(const JsonValue &v, SimResult *result);

// --- store entries -------------------------------------------------------

/**
 * Encode a complete store entry: one compact JSON line
 * {"schema","key","result"} followed by "\nchecksum 0x<fnv64>\n" over
 * that line. This text is the canonical persisted and wire form.
 */
std::string encodeResultEntry(const SimCacheKey &key,
                              const SimResult &result);

/**
 * Decode and fully verify a store entry: checksum trailer, schema tag,
 * JSON shape. @return false with a diagnostic in @p err on any defect;
 * on success fills @p key and @p result.
 */
bool decodeResultEntry(const std::string &text, SimCacheKey *key,
                       SimResult *result, std::string *err);

/**
 * Verify the checksum trailer and extract the embedded key without
 * parsing the result body — the store's cheap integrity scan.
 */
bool verifyResultEntry(const std::string &text, SimCacheKey *key,
                       std::string *err);

} // namespace pfits

#endif // POWERFITS_SVC_PROTO_HH
