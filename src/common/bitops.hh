/**
 * @file
 * Bit-manipulation helpers shared by the encoders, decoders and power
 * models. All helpers are constexpr and operate on explicit-width types so
 * that instruction-encoding code reads like the format diagrams.
 */

#ifndef POWERFITS_COMMON_BITOPS_HH
#define POWERFITS_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace pfits
{

/** Extract bits [hi:lo] (inclusive, hi >= lo) of @p value. */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    uint32_t mask = width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/** Insert @p field into bits [hi:lo] of @p value and return the result. */
constexpr uint32_t
insertBits(uint32_t value, unsigned hi, unsigned lo, uint32_t field)
{
    unsigned width = hi - lo + 1;
    uint32_t mask = width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
sext(uint32_t value, unsigned width)
{
    if (width == 0 || width >= 32)
        return static_cast<int32_t>(value);
    uint32_t sign = 1u << (width - 1);
    uint32_t mask = (1u << width) - 1u;
    uint32_t v = value & mask;
    return static_cast<int32_t>((v ^ sign) - sign);
}

/** @return true when @p value fits in an unsigned field of @p width bits. */
constexpr bool
fitsUnsigned(uint32_t value, unsigned width)
{
    if (width >= 32)
        return true;
    return value < (1u << width);
}

/** @return true when @p value fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(int32_t value, unsigned width)
{
    if (width >= 32)
        return true;
    int32_t lo = -(1 << (width - 1));
    int32_t hi = (1 << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Rotate a 32-bit value right by @p amount (amount taken mod 32). */
constexpr uint32_t
rotr32(uint32_t value, unsigned amount)
{
    amount &= 31u;
    if (amount == 0)
        return value;
    return (value >> amount) | (value << (32 - amount));
}

/** Rotate a 32-bit value left by @p amount (amount taken mod 32). */
constexpr uint32_t
rotl32(uint32_t value, unsigned amount)
{
    return rotr32(value, 32u - (amount & 31u));
}

/** Population count. */
constexpr unsigned
popcount32(uint32_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

/** Hamming distance between two 32-bit words (bit toggles on a bus). */
constexpr unsigned
hamming32(uint32_t a, uint32_t b)
{
    return popcount32(a ^ b);
}

/** ceil(log2(value)) for value >= 1; 0 maps to 0. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    unsigned log = 0;
    uint64_t v = 1;
    while (v < value) {
        v <<= 1;
        ++log;
    }
    return log;
}

/** @return true if @p value is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Test whether a 32-bit constant is expressible as an ARM-style modified
 * immediate: an 8-bit value rotated right by an even amount.
 */
constexpr bool
isArmImmediate(uint32_t value)
{
    for (unsigned rot = 0; rot < 32; rot += 2) {
        if ((rotl32(value, rot) & ~0xffu) == 0)
            return true;
    }
    return false;
}

/**
 * Encode a 32-bit constant as an ARM-style modified immediate.
 *
 * @param value  the constant to encode
 * @param imm8   out: the 8-bit payload
 * @param rot    out: the rotate-right amount (even, 0..30)
 * @return true on success, false when the constant is not encodable.
 */
constexpr bool
encodeArmImmediate(uint32_t value, uint32_t &imm8, uint32_t &rot)
{
    for (unsigned r = 0; r < 32; r += 2) {
        uint32_t rotated = rotl32(value, r);
        if ((rotated & ~0xffu) == 0) {
            imm8 = rotated;
            rot = r;
            return true;
        }
    }
    return false;
}

} // namespace pfits

#endif // POWERFITS_COMMON_BITOPS_HH
