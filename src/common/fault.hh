/**
 * @file
 * Deterministic soft-error (transient bit-flip) injection.
 *
 * The paper's argument is about bits: a FITS stream carries the program
 * in roughly half the I-cache bit-cells of the ARM stream, which also
 * halves the cross-section a particle strike can corrupt. A FaultPlan
 * makes that measurable: it schedules transient single-bit upsets, by
 * dynamic instruction count, into three targets —
 *
 *  - I-cache line data (tags-only model: a resident line is marked
 *    corrupt; consumption is detected by per-line parity when enabled,
 *    or escapes to the core when not),
 *  - main-memory words (a real bit flip in the data image; escapes
 *    surface as wrong golden checksums or architectural traps),
 *  - decoder-configuration text (a bit flip in the saved FitsIsa,
 *    caught — or not — by the serialize-layer checksum).
 *
 * Everything derives from one seed through the suite's Rng, so a sweep
 * is bit-for-bit reproducible: same seed, same faults, same outcomes.
 */

#ifndef POWERFITS_COMMON_FAULT_HH
#define POWERFITS_COMMON_FAULT_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/stats.hh"

namespace pfits
{

/** What a scheduled upset strikes. */
enum class FaultTarget : uint8_t
{
    ICACHE, //!< a resident I-cache line's data bits
    MEMORY, //!< a word of the data memory image
    CONFIG, //!< the serialized decoder configuration
    NUM,
};

/** @return "icache"/"memory"/"config". */
const char *faultTargetName(FaultTarget target);

/** Injection schedule parameters; an interval of 0 disables a target. */
struct FaultParams
{
    uint64_t seed = 0x5eedfa017ull;

    /**
     * Mean dynamic instructions between upsets per run-time target.
     * Actual gaps are uniform in [1, 2*interval], so the mean is met
     * without a fixed period aliasing against loop bodies.
     */
    uint64_t icacheMeanInterval = 0;
    uint64_t memoryMeanInterval = 0;

    /** @return true when any run-time target is armed. */
    bool
    enabled() const
    {
        return icacheMeanInterval != 0 || memoryMeanInterval != 0;
    }
};

/**
 * A seeded schedule of bit flips plus the injection/detection/escape
 * bookkeeping for each target.
 *
 * The Machine polls due() once per retired instruction; the serialize
 * fuzzers and benches call corruptTextBit() directly. Counters persist
 * across runs so a retry-with-reload loop accumulates into one plan.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultParams &params);

    /**
     * @return true when an upset of @p target is due at instruction
     * @p instr (and advance the schedule). At most one per call.
     */
    bool due(FaultTarget target, uint64_t instr);

    /** The plan's RNG, for victim selection by the injection sites. */
    Rng &rng() { return rng_; }

    // --- bookkeeping ----------------------------------------------------
    void recordInjected(FaultTarget target);
    void recordDetected(FaultTarget target);
    void recordEscaped(FaultTarget target);

    uint64_t injected(FaultTarget target) const;
    uint64_t detected(FaultTarget target) const;
    uint64_t escaped(FaultTarget target) const;

    /** Sum of injected() over all targets. */
    uint64_t totalInjected() const;

    /**
     * Flip one uniformly chosen bit of @p text in place (the CONFIG
     * target), recording the injection.
     * @return the flipped bit index, or -1 when @p text is empty.
     */
    int64_t corruptTextBit(std::string &text);

    const FaultParams &params() const { return params_; }

    /**
     * Register "faults.<target>.{injected,detected,escaped}" counters
     * into @p group. The plan must outlive the group.
     */
    void addStats(StatGroup &group) const;

  private:
    uint64_t nextGap(uint64_t mean);

    FaultParams params_;
    Rng rng_;
    uint64_t nextAt_[static_cast<size_t>(FaultTarget::NUM)];
    Counter injected_[static_cast<size_t>(FaultTarget::NUM)];
    Counter detected_[static_cast<size_t>(FaultTarget::NUM)];
    Counter escaped_[static_cast<size_t>(FaultTarget::NUM)];
};

} // namespace pfits

#endif // POWERFITS_COMMON_FAULT_HH
