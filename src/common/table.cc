#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace pfits
{

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

void
Table::setHeader(std::vector<std::string> header)
{
    if (header.empty())
        fatal("table '%s': header must not be empty", title_.c_str());
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        fatal("table '%s': row has %zu cells, header has %zu",
              title_.c_str(), row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addRow(const std::string &label, const std::vector<double> &cells,
              int precision)
{
    std::vector<std::string> row;
    row.reserve(cells.size() + 1);
    row.push_back(label);
    for (double cell : cells)
        row.push_back(formatDouble(cell, precision));
    addRow(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << "  "
                   << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };
    emit(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    // RFC 4180: quote cells containing separators, quotes or line
    // breaks; embedded quotes are doubled.
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            const std::string &cell = row[c];
            if (cell.find_first_of(",\"\n\r") != std::string::npos) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace pfits
