/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the *user* asked for something impossible (bad configuration,
 *            malformed assembly, ...); exits with status 1.
 * warn()   — something questionable happened but simulation can continue.
 * inform() — plain status output.
 */

#ifndef POWERFITS_COMMON_LOGGING_HH
#define POWERFITS_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pfits
{

/** Exception thrown by fatal() so that tests can intercept user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic() so that tests can intercept internal bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

std::string vformat(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Report an unrecoverable user-level error.
 *
 * Throws FatalError; the top-level drivers catch it, print the message and
 * exit(1). Library code must treat this as non-returning.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a violated internal invariant (a bug in the library itself).
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. Never stops the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool quiet();

/** Total warn() messages actually printed (suppressed ones excluded). */
uint64_t warnCount();

} // namespace pfits

/**
 * warn() at most once per call site. Fault sweeps inject thousands of
 * identical events; the first occurrence is informative, the rest are
 * noise. Call-site state is a function-local atomic, so the limit is
 * per textual occurrence, not per message, and the macros stay safe
 * when invoked from the experiment engine's worker threads.
 */
#define warn_once(...)                                                  \
    do {                                                                \
        static std::atomic<bool> _pfits_warned_once{false};             \
        if (!_pfits_warned_once.exchange(true,                          \
                                         std::memory_order_relaxed)) {  \
            ::pfits::warn(__VA_ARGS__);                                 \
        }                                                               \
    } while (0)

/** warn() on the 1st, (n+1)th, (2n+1)th, ... execution of this site. */
#define warn_every_n(n, ...)                                            \
    do {                                                                \
        static std::atomic<uint64_t> _pfits_warn_tick{0};               \
        if (_pfits_warn_tick.fetch_add(1, std::memory_order_relaxed)    \
                % static_cast<uint64_t>(n) == 0)                        \
            ::pfits::warn(__VA_ARGS__);                                 \
    } while (0)

#endif // POWERFITS_COMMON_LOGGING_HH
