/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named scalar counters, distributions and derived
 * formula values into a StatGroup; the experiment harness then walks the
 * group to dump machine-readable results. Keeping statistics out of the
 * functional code paths (plain uint64_t increments) keeps the simulator
 * fast while still giving every module a uniform reporting surface.
 */

#ifndef POWERFITS_COMMON_STATS_HH
#define POWERFITS_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace pfits
{

/** A named event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * A histogram over integer sample values with fixed-width buckets plus
 * underflow/overflow, tracking min/max/mean for reporting.
 */
class Distribution
{
  public:
    /**
     * @param lo          lowest bucketed value (inclusive)
     * @param hi          highest bucketed value (inclusive)
     * @param bucket_size width of each bucket
     */
    Distribution(int64_t lo, int64_t hi, int64_t bucket_size);

    /** Record one sample. */
    void sample(int64_t value, uint64_t count = 1);

    uint64_t samples() const { return samples_; }
    int64_t minSample() const { return min_; }
    int64_t maxSample() const { return max_; }
    double mean() const;

    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    int64_t bucketLow(size_t idx) const { return lo_ + idx * bucketSize_; }

    void reset();

  private:
    int64_t lo_;
    int64_t hi_;
    int64_t bucketSize_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t samples_ = 0;
    int64_t sum_ = 0;
    int64_t min_ = 0;
    int64_t max_ = 0;
};

/**
 * A named collection of statistics owned by one simulated component.
 *
 * Values are exposed either as live pointers to counters or as deferred
 * formulas evaluated at dump time (e.g. miss rate = misses / accesses).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name; name must be unique. */
    void addCounter(const std::string &stat_name, const Counter *counter,
                    const std::string &desc = "");

    /** Register a formula evaluated lazily at dump time. */
    void addFormula(const std::string &stat_name,
                    std::function<double()> formula,
                    const std::string &desc = "");

    const std::string &name() const { return name_; }

    /** Evaluate a registered statistic by name. */
    double lookup(const std::string &stat_name) const;

    /** @return true when @p stat_name is registered. */
    bool has(const std::string &stat_name) const;

    /** Write "group.stat value # desc" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** All registered statistic names, sorted. */
    std::vector<std::string> names() const;

  private:
    struct Entry
    {
        std::function<double()> eval;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
};

} // namespace pfits

#endif // POWERFITS_COMMON_STATS_HH
