#include "common/fileio.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/logging.hh"

namespace pfits
{

namespace
{

void
setErr(std::string *err, const char *what, const std::string &path)
{
    if (err)
        *err = detail::format("%s '%s': %s", what, path.c_str(),
                              std::strerror(errno));
}

/** Directory part of @p path ("." when it has none). */
std::string
dirOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    return slash == 0 ? "/" : path.substr(0, slash);
}

bool
writeAll(int fd, const char *data, size_t n, std::string *err,
         const std::string &path)
{
    size_t done = 0;
    while (done < n) {
        ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, "cannot write", path);
            return false;
        }
        done += static_cast<size_t>(w);
    }
    return true;
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &contents,
                std::string *err)
{
    // A per-process sequence number keeps concurrent writers in one
    // process from colliding on the temp name; the pid separates
    // processes sharing a directory (several clients PUTting into one
    // store through their own daemons, say).
    static std::atomic<uint64_t> seq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        setErr(err, "cannot create", tmp);
        return false;
    }
    if (!writeAll(fd, contents.data(), contents.size(), err, tmp) ||
        ::fsync(fd) != 0) {
        if (err && err->empty())
            setErr(err, "cannot fsync", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setErr(err, "cannot close", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, "cannot rename into", path);
        ::unlink(tmp.c_str());
        return false;
    }
    // Persist the rename itself: fsync the directory entry. Failure
    // here is reported but the new contents are already visible.
    const std::string dir = dirOf(path);
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
        if (::fsync(dfd) != 0)
            setErr(err, "cannot fsync directory", dir);
        ::close(dfd);
    }
    return true;
}

bool
readFileToString(const std::string &path, std::string *out,
                 std::string *err)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setErr(err, "cannot open", path);
        return false;
    }
    out->clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t r = ::read(fd, buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, "cannot read", path);
            ::close(fd);
            return false;
        }
        if (r == 0)
            break;
        out->append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return true;
}

} // namespace pfits
