#include "common/fault.hh"

#include "common/logging.hh"

namespace pfits
{

const char *
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::ICACHE: return "icache";
      case FaultTarget::MEMORY: return "memory";
      case FaultTarget::CONFIG: return "config";
      default: panic("bad FaultTarget");
    }
}

FaultPlan::FaultPlan(const FaultParams &params)
    : params_(params), rng_(params.seed)
{
    for (auto &at : nextAt_)
        at = 0;
    if (params_.icacheMeanInterval)
        nextAt_[static_cast<size_t>(FaultTarget::ICACHE)] =
            nextGap(params_.icacheMeanInterval);
    if (params_.memoryMeanInterval)
        nextAt_[static_cast<size_t>(FaultTarget::MEMORY)] =
            nextGap(params_.memoryMeanInterval);
}

uint64_t
FaultPlan::nextGap(uint64_t mean)
{
    // Uniform in [1, 2*mean]: meets the mean without a fixed period
    // that could alias against a kernel's loop structure.
    uint64_t span = 2 * mean;
    if (span > 0xffffffffull)
        span = 0xffffffffull;
    return 1 + rng_.below(static_cast<uint32_t>(span));
}

bool
FaultPlan::due(FaultTarget target, uint64_t instr)
{
    uint64_t mean = 0;
    switch (target) {
      case FaultTarget::ICACHE: mean = params_.icacheMeanInterval; break;
      case FaultTarget::MEMORY: mean = params_.memoryMeanInterval; break;
      default: return false; // CONFIG upsets are not instruction-timed
    }
    if (mean == 0)
        return false;
    uint64_t &at = nextAt_[static_cast<size_t>(target)];
    if (instr < at)
        return false;
    at = instr + nextGap(mean);
    return true;
}

void
FaultPlan::recordInjected(FaultTarget target)
{
    ++injected_[static_cast<size_t>(target)];
}

void
FaultPlan::recordDetected(FaultTarget target)
{
    ++detected_[static_cast<size_t>(target)];
}

void
FaultPlan::recordEscaped(FaultTarget target)
{
    ++escaped_[static_cast<size_t>(target)];
}

uint64_t
FaultPlan::injected(FaultTarget target) const
{
    return injected_[static_cast<size_t>(target)].value();
}

uint64_t
FaultPlan::detected(FaultTarget target) const
{
    return detected_[static_cast<size_t>(target)].value();
}

uint64_t
FaultPlan::escaped(FaultTarget target) const
{
    return escaped_[static_cast<size_t>(target)].value();
}

uint64_t
FaultPlan::totalInjected() const
{
    uint64_t sum = 0;
    for (const Counter &c : injected_)
        sum += c.value();
    return sum;
}

int64_t
FaultPlan::corruptTextBit(std::string &text)
{
    if (text.empty())
        return -1;
    uint64_t bits = static_cast<uint64_t>(text.size()) * 8;
    uint64_t bit;
    if (bits > 0xffffffffull) {
        bit = (static_cast<uint64_t>(rng_.next()) << 32 | rng_.next()) %
              bits;
    } else {
        bit = rng_.below(static_cast<uint32_t>(bits));
    }
    text[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(text[bit / 8]) ^ (1u << (bit % 8)));
    recordInjected(FaultTarget::CONFIG);
    return static_cast<int64_t>(bit);
}

void
FaultPlan::addStats(StatGroup &group) const
{
    for (size_t t = 0; t < static_cast<size_t>(FaultTarget::NUM); ++t) {
        const char *name = faultTargetName(static_cast<FaultTarget>(t));
        group.addCounter(std::string("faults.") + name + ".injected",
                         &injected_[t], "upsets injected");
        group.addCounter(std::string("faults.") + name + ".detected",
                         &detected_[t], "upsets caught by a checker");
        group.addCounter(std::string("faults.") + name + ".escaped",
                         &escaped_[t], "upsets consumed undetected");
    }
}

} // namespace pfits
