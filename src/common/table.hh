/**
 * @file
 * Fixed-width text table and CSV writer used by the bench binaries to
 * print figure data in the same rows/series the paper reports.
 */

#ifndef POWERFITS_COMMON_TABLE_HH
#define POWERFITS_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pfits
{

/**
 * A simple column-oriented table. The first column is the row label
 * (benchmark name); remaining columns are series (e.g. ARM16, FITS8).
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Define the column headers (including the label column). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: label + numeric cells with fixed precision. */
    void addRow(const std::string &label, const std::vector<double> &cells,
                int precision = 2);

    /** Pretty-print with aligned columns. */
    void print(std::ostream &os) const;

    /** Emit RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }
    const std::string &title() const { return title_; }
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &body() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p precision digits after the decimal point. */
std::string formatDouble(double value, int precision = 2);

/** Format a ratio as a percentage string, e.g. 0.471 -> "47.1%". */
std::string formatPercent(double ratio, int precision = 1);

} // namespace pfits

#endif // POWERFITS_COMMON_TABLE_HH
