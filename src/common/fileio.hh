/**
 * @file
 * Crash-safe file helpers shared by the manifest writers and the
 * pfitsd result store.
 *
 * writeFileAtomic() gives the repo one durable-publish primitive:
 * readers of a path either see the complete old contents or the
 * complete new contents, never a torn intermediate — even across
 * SIGKILL or power loss mid-write. The implementation is the classic
 * temp file + fsync + rename + directory fsync sequence; the temp file
 * lives next to the target so the rename never crosses filesystems.
 */

#ifndef POWERFITS_COMMON_FILEIO_HH
#define POWERFITS_COMMON_FILEIO_HH

#include <string>

namespace pfits
{

/**
 * Atomically replace the contents of @p path with @p contents.
 *
 * Writes to a uniquely named sibling temp file ("<path>.tmp.<pid>.<n>"),
 * fsyncs it, renames it over @p path, and fsyncs the containing
 * directory so the rename itself survives a crash. On any failure the
 * temp file is unlinked and @p path is left untouched.
 *
 * @param err when non-null, receives a description of the failure.
 * @return true on success.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents,
                     std::string *err = nullptr);

/**
 * Read the whole of @p path into @p out.
 * @return true on success; on failure @p err (when non-null) says why.
 */
bool readFileToString(const std::string &path, std::string *out,
                      std::string *err = nullptr);

} // namespace pfits

#endif // POWERFITS_COMMON_FILEIO_HH
