/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro128**).
 *
 * Every workload generator in the suite derives its inputs from this RNG
 * with a fixed seed so that simulations — and therefore the reproduced
 * figures — are bit-for-bit repeatable across runs and machines.
 */

#ifndef POWERFITS_COMMON_RNG_HH
#define POWERFITS_COMMON_RNG_HH

#include <cstdint>

#include "common/bitops.hh"

namespace pfits
{

/** Small, fast, deterministic PRNG; not for cryptography. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed (splitmix64 expansion). */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = static_cast<uint32_t>((z ^ (z >> 31)) & 0xffffffffu);
        }
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** Next 32 uniformly distributed bits. */
    uint32_t
    next()
    {
        uint32_t result = rotl32(state_[1] * 5, 7) * 9;
        uint32_t t = state_[1] << 9;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl32(state_[3], 11);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    uint32_t
    below(uint32_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        uint64_t product = static_cast<uint64_t>(next()) * bound;
        uint32_t low = static_cast<uint32_t>(product & 0xffffffffu);
        if (low < bound) {
            uint32_t threshold = (0u - bound) % bound;
            while (low < threshold) {
                product = static_cast<uint64_t>(next()) * bound;
                low = static_cast<uint32_t>(product & 0xffffffffu);
            }
        }
        return static_cast<uint32_t>(product >> 32);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int32_t
    range(int32_t lo, int32_t hi)
    {
        uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
        return lo + static_cast<int32_t>(below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

  private:
    uint32_t state_[4];
};

} // namespace pfits

#endif // POWERFITS_COMMON_RNG_HH
