#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

namespace pfits
{

Distribution::Distribution(int64_t lo, int64_t hi, int64_t bucket_size)
    : lo_(lo), hi_(hi), bucketSize_(bucket_size)
{
    if (bucket_size <= 0)
        fatal("Distribution bucket size must be positive (got %lld)",
              static_cast<long long>(bucket_size));
    if (hi < lo)
        fatal("Distribution range is empty (lo=%lld hi=%lld)",
              static_cast<long long>(lo), static_cast<long long>(hi));
    size_t nbuckets = static_cast<size_t>((hi - lo) / bucket_size + 1);
    buckets_.assign(nbuckets, 0);
}

void
Distribution::sample(int64_t value, uint64_t count)
{
    if (samples_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    samples_ += count;
    sum_ += value * static_cast<int64_t>(count);

    if (value < lo_) {
        underflow_ += count;
    } else if (value > hi_) {
        overflow_ += count;
    } else {
        buckets_[static_cast<size_t>((value - lo_) / bucketSize_)] += count;
    }
}

double
Distribution::mean() const
{
    if (samples_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(samples_);
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

void
StatGroup::addCounter(const std::string &stat_name, const Counter *counter,
                      const std::string &desc)
{
    if (entries_.count(stat_name))
        panic("duplicate statistic '%s' in group '%s'",
              stat_name.c_str(), name_.c_str());
    entries_[stat_name] = Entry{
        [counter]() { return static_cast<double>(counter->value()); },
        desc};
}

void
StatGroup::addFormula(const std::string &stat_name,
                      std::function<double()> formula,
                      const std::string &desc)
{
    if (entries_.count(stat_name))
        panic("duplicate statistic '%s' in group '%s'",
              stat_name.c_str(), name_.c_str());
    entries_[stat_name] = Entry{std::move(formula), desc};
}

double
StatGroup::lookup(const std::string &stat_name) const
{
    auto it = entries_.find(stat_name);
    if (it == entries_.end())
        panic("unknown statistic '%s' in group '%s'",
              stat_name.c_str(), name_.c_str());
    return it->second.eval();
}

bool
StatGroup::has(const std::string &stat_name) const
{
    return entries_.count(stat_name) != 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, entry] : entries_) {
        os << name_ << '.' << stat_name << ' '
           << std::setprecision(12) << entry.eval();
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
}

std::vector<std::string>
StatGroup::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[stat_name, entry] : entries_)
        out.push_back(stat_name);
    return out;
}

} // namespace pfits
