#include "common/logging.hh"

#include <cstdio>

namespace pfits
{

namespace
{
std::atomic<bool> quietFlag{false};
std::atomic<uint64_t> warnsPrinted{0};
} // namespace

namespace detail
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);

    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

} // namespace detail

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    throw PanicError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    ++warnsPrinted;
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

uint64_t
warnCount()
{
    return warnsPrinted;
}

} // namespace pfits
