/**
 * @file
 * Ablation A2 (DESIGN.md §6): the register-field width / opcode-space
 * trade-off (the paper's register-pressure discussion, Section 3.3).
 * Compares natural field sizing against forced 4-bit fields, and sweeps
 * the decoder slot budget.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"

using namespace pfits;

namespace
{

const char *kBenches[] = {
    "crc32", "gsm", "sha", "dijkstra", "qsort", "fft",
};

Table
sweepRegFields(benchutil::BenchHarness &harness)
{
    Table table("Ablation A2a: register-field width");
    table.setHeader({"benchmark", "natural bits", "nat map %",
                     "forced-4 map %", "nat code %", "forced-4 code %"});
    ExperimentParams natural;
    ExperimentParams forced;
    forced.synth.forceWideRegFields = true;
    harness.applyTo(natural);
    harness.applyTo(forced);
    Runner nat_runner(natural), wide_runner(forced);
    for (const char *name : kBenches) {
        const BenchResult &n = nat_runner.get(name);
        const BenchResult &w = wide_runner.get(name);
        table.addRow(name,
                     {static_cast<double>(n.regBits),
                      100 * n.mapping.staticRate(),
                      100 * w.mapping.staticRate(),
                      100.0 * n.fitsBytes / n.armBytes,
                      100.0 * w.fitsBytes / w.armBytes},
                     1);
    }
    return table;
}

Table
sweepSlotBudget(benchutil::BenchHarness &harness)
{
    Table table("Ablation A2b: decoder slot budget (suite subset)");
    table.setHeader({"max slots", "static map %", "dyn map %",
                     "code vs ARM %"});
    for (unsigned slots : {4u, 8u, 16u, 32u, 64u, 128u}) {
        ExperimentParams params;
        params.synth.maxSlots = slots;
        harness.applyTo(params);
        Runner runner(params);
        double smap = 0, dmap = 0, code = 0;
        for (const char *name : kBenches) {
            const BenchResult &b = runner.get(name);
            smap += b.mapping.staticRate();
            dmap += b.mapping.dynRate();
            code += static_cast<double>(b.fitsBytes) / b.armBytes;
        }
        double n = static_cast<double>(std::size(kBenches));
        table.addRow(std::to_string(slots),
                     {100 * smap / n, 100 * dmap / n, 100 * code / n},
                     1);
    }
    return table;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table reg_fields = sweepRegFields(harness);
        Table slot_budget = sweepSlotBudget(harness);
        if (opts.csv) {
            reg_fields.printCsv(std::cout);
            std::cout << "\n";
            slot_budget.printCsv(std::cout);
        } else {
            reg_fields.print(std::cout);
            std::cout << "\n";
            slot_budget.print(std::cout);
            std::cout << "\nexpected shape: forcing 4-bit fields on "
                         "small register sets wastes opcode space and "
                         "lowers the mapping rate; coverage saturates "
                         "with the slot budget\n";
        }
        harness.addTable(reg_fields);
        harness.addTable(slot_budget);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
