/**
 * @file
 * Ablation A2 (DESIGN.md §6): the register-field width / opcode-space
 * trade-off (the paper's register-pressure discussion, Section 3.3).
 * Compares natural field sizing against forced 4-bit fields, and sweeps
 * the decoder slot budget.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"

using namespace pfits;

namespace
{

const char *kBenches[] = {
    "crc32", "gsm", "sha", "dijkstra", "qsort", "fft",
};

void
sweepRegFields(std::ostream &os)
{
    Table table("Ablation A2a: register-field width");
    table.setHeader({"benchmark", "natural bits", "nat map %",
                     "forced-4 map %", "nat code %", "forced-4 code %"});
    ExperimentParams natural;
    ExperimentParams forced;
    forced.synth.forceWideRegFields = true;
    Runner nat_runner(natural), wide_runner(forced);
    for (const char *name : kBenches) {
        const BenchResult &n = nat_runner.get(name);
        const BenchResult &w = wide_runner.get(name);
        table.addRow(name,
                     {static_cast<double>(n.regBits),
                      100 * n.mapping.staticRate(),
                      100 * w.mapping.staticRate(),
                      100.0 * n.fitsBytes / n.armBytes,
                      100.0 * w.fitsBytes / w.armBytes},
                     1);
    }
    table.print(os);
}

void
sweepSlotBudget(std::ostream &os)
{
    Table table("Ablation A2b: decoder slot budget (suite subset)");
    table.setHeader({"max slots", "static map %", "dyn map %",
                     "code vs ARM %"});
    for (unsigned slots : {4u, 8u, 16u, 32u, 64u, 128u}) {
        ExperimentParams params;
        params.synth.maxSlots = slots;
        Runner runner(params);
        double smap = 0, dmap = 0, code = 0;
        for (const char *name : kBenches) {
            const BenchResult &b = runner.get(name);
            smap += b.mapping.staticRate();
            dmap += b.mapping.dynRate();
            code += static_cast<double>(b.fitsBytes) / b.armBytes;
        }
        double n = static_cast<double>(std::size(kBenches));
        table.addRow(std::to_string(slots),
                     {100 * smap / n, 100 * dmap / n, 100 * code / n},
                     1);
    }
    table.print(os);
}

} // namespace

int
main()
{
    try {
        sweepRegFields(std::cout);
        std::cout << "\n";
        sweepSlotBudget(std::cout);
        std::cout << "\nexpected shape: forcing 4-bit fields on small "
                     "register sets wastes opcode space and lowers the "
                     "mapping rate; coverage saturates with the slot "
                     "budget\n";
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
