/**
 * @file
 * Ablation A1 (DESIGN.md §6): sweep the operate-immediate dictionary
 * capacity — the paper's "programmable immediate storage" — and watch
 * the mapping rate and code-size ratio saturate. This is the
 * utilization-based immediate synthesis trade-off of Section 3.3.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"

using namespace pfits;

namespace
{

// A representative subset keeps the sweep quick; the full suite is
// exercised by the figure binaries.
const char *kBenches[] = {
    "crc32", "sha", "jpeg.encode", "blowfish.encode", "bitcount",
    "adpcm.decode",
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Ablation A1: operate-dictionary capacity sweep "
                    "(suite subset)");
        table.setHeader({"capacity", "static map %", "dyn map %",
                         "code vs ARM %", "avg slots"});
        for (unsigned capacity : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            ExperimentParams params;
            params.synth.opDictCapacity = capacity;
            harness.applyTo(params);
            Runner runner(params);
            double smap = 0, dmap = 0, code = 0, slots = 0;
            for (const char *name : kBenches) {
                const BenchResult &b = runner.get(name);
                smap += b.mapping.staticRate();
                dmap += b.mapping.dynRate();
                code += static_cast<double>(b.fitsBytes) / b.armBytes;
                slots += static_cast<double>(b.isaSlots);
            }
            double n = static_cast<double>(std::size(kBenches));
            table.addRow(std::to_string(capacity),
                         {100 * smap / n, 100 * dmap / n,
                          100 * code / n, slots / n},
                         1);
        }
        if (opts.csv)
            table.printCsv(std::cout);
        else {
            table.print(std::cout);
            std::cout << "\nexpected shape: mapping and code size "
                         "saturate once the dictionary holds the hot "
                         "constants\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
