/** @file Reproduces Figure 4: ARM-to-FITS dynamic mapping coverage. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig4DynamicMapping,
               "a 98% average dynamic mapping")
