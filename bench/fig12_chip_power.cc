/** @file Reproduces Figure 12: total chip power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig12ChipSaving,
               "FITS8 15%; ARM8 8%; FITS16 7%")
