/** @file Reproduces Figure 5: ARM vs THUMB vs FITS code footprint. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig5CodeSize,
               "THUMB ~67% of ARM, FITS ~53% of ARM (47% eliminated)")
