/** @file Reproduces Figure 9: I-cache leakage power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig9LeakageSaving,
               "14.9% average for FITS8; ARM8's saving eroded or wiped "
               "out by its longer operational period")
