/** @file Reproduces Figure 10: I-cache peak power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig10PeakSaving,
               "46% FITS16, 63% FITS8, 31% ARM8 (width x size compose)")
