/**
 * @file
 * Shared scaffolding for the figure-reproduction binaries: each bench
 * prints the same rows/series the paper's figure plots, followed by the
 * paper's reported values for comparison (EXPERIMENTS.md records the
 * measured-vs-paper history).
 */

#ifndef POWERFITS_BENCH_FIG_UTIL_HH
#define POWERFITS_BENCH_FIG_UTIL_HH

#include <cstdio>
#include <exception>
#include <string_view>
#include <iostream>

#include "common/table.hh"
#include "exp/figures.hh"

namespace pfits::benchutil
{

/**
 * Run one figure builder and print its table plus the paper note.
 * With "--csv" the table is emitted as CSV (for plotting scripts) and
 * the note is suppressed. "--jobs N" (or PFITS_JOBS) sets the engine's
 * worker count; the table is byte-identical at any value.
 * "--trace-on-trap" arms a bounded flight recorder on every run: when
 * a run ends Trapped or FaultDetected, its last 64 events are appended
 * as JSONL to <bench>_<core>.trace.jsonl in the working directory.
 */
inline int
runFigure(Table (*builder)(Runner &), const char *paper_note, int argc,
          char **argv)
{
    try {
        bool csv = false;
        bool trace_on_trap = false;
        for (int i = 1; i < argc; ++i) {
            if (std::string_view(argv[i]) == "--csv")
                csv = true;
            else if (std::string_view(argv[i]) == "--trace-on-trap")
                trace_on_trap = true;
        }
        ExperimentParams params;
        params.jobs = parseJobsFlag(argc, argv);
        if (trace_on_trap) {
            params.observers.traceOnTrap = true;
            params.observers.traceDepth = 64;
            params.observers.traceDir = ".";
        }
        Runner runner(params);
        Table table = builder(runner);
        if (csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\npaper reports: " << paper_note << "\n";
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace pfits::benchutil

#define PFITS_FIG_MAIN(builder, note)                                   \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return pfits::benchutil::runFigure(builder, note, argc, argv);  \
    }

#endif // POWERFITS_BENCH_FIG_UTIL_HH
