/**
 * @file
 * Shared scaffolding for the figure-reproduction binaries: each bench
 * prints the same rows/series the paper's figure plots, followed by the
 * paper's reported values for comparison (EXPERIMENTS.md records the
 * measured-vs-paper history).
 *
 * Every bench accepts the same flag set (parseArgs rejects anything
 * else — a typo like "--cvs" is a usage error, not a silent no-op):
 *
 *   --csv             emit tables as CSV, suppress the paper note
 *   --jobs N          engine worker count (also --jobs=N, -jN,
 *                     PFITS_JOBS); output is byte-identical at any N
 *   --tiles N         run every simulation as an N-tile chip (round-
 *                     robin over a shared coherent L2, sim/chip.hh);
 *                     1..64, also --tiles=N and PFITS_TILES. The
 *                     default 1 is the plain single-core Machine and
 *                     reproduces every pre-chip table byte-identically
 *   --trace-on-trap   arm the bounded flight recorder on every run
 *   --trace-dir DIR   directory trace JSONL files are written to
 *                     (default "."); give concurrent runs distinct
 *                     directories so dumps never interleave
 *   --json PATH       write a pfits-manifest-v1 run manifest: build
 *                     provenance, params, simulated content hashes,
 *                     result tables, engine self-metrics, wall/CPU
 *                     time (docs/OBSERVABILITY.md)
 *   --trace-out FILE  write a Chrome trace-event JSON timeline of the
 *                     run (runner phases, per-worker job lanes,
 *                     SimCache hits/misses, per-tile chip quanta);
 *                     load it in Perfetto or chrome://tracing
 *                     (docs/OBSERVABILITY.md "Tracing")
 *   --daemon[=SOCK]   resolve simulations through a pfitsd daemon
 *                     (docs/SERVICE.md); bare --daemon uses
 *                     $PFITS_DAEMON or "pfitsd.sock". Setting
 *                     PFITS_DAEMON alone also enables it. The daemon
 *                     is an accelerator only: if it is unreachable or
 *                     misbehaves the bench silently simulates locally
 *                     (svc.fallbacks counts this) and output is
 *                     byte-identical either way.
 */

#ifndef POWERFITS_BENCH_FIG_UTIL_HH
#define POWERFITS_BENCH_FIG_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/fileio.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exp/figures.hh"
#include "exp/simcache.hh"
#include "exp/simservice.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/client.hh"

namespace pfits::benchutil
{

/** The flag set shared by every bench binary. */
struct BenchOptions
{
    bool csv = false;
    unsigned jobs = 0; //!< 0 = process default pool

    //!< Chip tile count; >1 simulates homogeneous N-tile chips with a
    //!< shared coherent L2 (ExperimentParams::chipSim).
    unsigned tiles = 1;

    //!< Machine execution loop; the backends are result-equivalent
    //!< (differentially verified), so tables are byte-identical —
    //!< "fast" just gets there quicker.
    SimBackend backend = SimBackend::Interp;

    bool traceOnTrap = false;
    std::string traceDir = ".";
    std::string jsonPath; //!< empty = no manifest

    //!< Chrome trace-event timeline target; empty = tracing disabled
    std::string traceOutPath;

    //!< pfitsd socket to resolve simulations through; empty = local
    std::string daemonSocket;
};

inline void
printUsage(const char *tool, std::ostream &os)
{
    os << "usage: " << tool
       << " [--csv] [--jobs N] [--tiles N] [--backend interp|fast]"
          " [--trace-on-trap] [--trace-dir DIR]"
          " [--json PATH] [--trace-out FILE] [--daemon[=SOCK]]\n"
          "  --csv            print tables as CSV\n"
          "  --jobs N         engine worker count (PFITS_JOBS also "
          "works)\n"
          "  --tiles N        simulate N-tile chips over a shared "
          "coherent L2\n"
          "                   (1..64; PFITS_TILES also works; default "
          "1 = single-core)\n"
          "  --backend B      simulator loop: interp (default) or "
          "fast\n"
          "                   (verified result-equivalent; tables are "
          "byte-identical)\n"
          "  --trace-on-trap  dump a bounded event trace on "
          "trap/machine-check\n"
          "  --trace-dir DIR  directory for trace JSONL files "
          "(default .)\n"
          "  --json PATH      write a run manifest "
          "(pfits-manifest-v1)\n"
          "  --trace-out FILE write a Chrome trace-event JSON "
          "timeline\n"
          "                   (Perfetto/chrome://tracing loadable)\n"
          "  --daemon[=SOCK]  resolve simulations through a pfitsd "
          "daemon\n"
          "                   (default $PFITS_DAEMON or "
          "pfitsd.sock)\n";
}

/**
 * Parse the shared flag set. Unknown flags (and malformed values) are
 * usage errors: print the usage text and exit 2. "--help" prints it
 * and exits 0.
 */
inline BenchOptions
parseArgs(int argc, char **argv, const char *tool)
{
    auto reject = [&](const std::string &why) {
        std::cerr << tool << ": " << why << "\n";
        printUsage(tool, std::cerr);
        std::exit(2);
    };
    auto parseCount = [&](std::string_view text) -> unsigned {
        if (text.empty())
            reject("--jobs wants a number");
        unsigned v = 0;
        for (char c : text) {
            if (c < '0' || c > '9')
                reject("malformed job count '" + std::string(text) +
                       "'");
            v = v * 10 + static_cast<unsigned>(c - '0');
        }
        return v == 0 ? 1u : v;
    };
    auto wantValue = [&](int &i, std::string_view flag) -> const char * {
        if (i + 1 >= argc)
            reject(std::string(flag) + " wants an argument");
        return argv[++i];
    };
    // Strict on purpose: a tile count is a simulation parameter, and
    // "--tiles 0"/"--tiles 4x" silently meaning something else would
    // poison a sweep. Digits only, 1..64 (the sharer-vector width).
    auto parseTiles = [&](std::string_view text) -> unsigned {
        if (text.empty())
            reject("--tiles wants a number");
        unsigned v = 0;
        for (char c : text) {
            if (c < '0' || c > '9' || v > 64)
                reject("malformed tile count '" + std::string(text) +
                       "' (want 1..64)");
            v = v * 10 + static_cast<unsigned>(c - '0');
        }
        if (v < 1 || v > 64)
            reject("tile count " + std::string(text) +
                   " outside 1..64");
        return v;
    };

    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--trace-on-trap") {
            opts.traceOnTrap = true;
        } else if (arg == "--trace-dir") {
            opts.traceDir = wantValue(i, arg);
        } else if (arg.rfind("--trace-dir=", 0) == 0) {
            opts.traceDir = std::string(arg.substr(12));
        } else if (arg == "--json") {
            opts.jsonPath = wantValue(i, arg);
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.jsonPath = std::string(arg.substr(7));
        } else if (arg == "--trace-out") {
            opts.traceOutPath = wantValue(i, arg);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceOutPath = std::string(arg.substr(12));
            if (opts.traceOutPath.empty())
                reject("--trace-out= wants a file path");
        } else if (arg == "--daemon") {
            const char *env = std::getenv("PFITS_DAEMON");
            opts.daemonSocket =
                env && *env ? env : "pfitsd.sock";
        } else if (arg.rfind("--daemon=", 0) == 0) {
            opts.daemonSocket = std::string(arg.substr(9));
            if (opts.daemonSocket.empty())
                reject("--daemon= wants a socket path");
        } else if (arg == "--backend") {
            if (!parseSimBackend(wantValue(i, arg), &opts.backend))
                reject("bad --backend value (interp|fast)");
        } else if (arg.rfind("--backend=", 0) == 0) {
            if (!parseSimBackend(std::string(arg.substr(10)),
                                 &opts.backend))
                reject("bad --backend value (interp|fast)");
        } else if (arg == "--jobs") {
            opts.jobs = parseCount(wantValue(i, arg));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = parseCount(arg.substr(7));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            opts.jobs = parseCount(arg.substr(2));
        } else if (arg == "--tiles") {
            opts.tiles = parseTiles(wantValue(i, arg));
        } else if (arg.rfind("--tiles=", 0) == 0) {
            opts.tiles = parseTiles(arg.substr(8));
        } else if (arg == "--help" || arg == "-h") {
            printUsage(tool, std::cout);
            std::exit(0);
        } else {
            // Name every accepted flag right in the error: the usage
            // block follows, but the one-line message is what scripts
            // capture and what a user pasting an error sees first.
            reject("unknown flag '" + std::string(arg) +
                   "' (accepted: --csv --jobs --tiles --backend "
                   "--trace-on-trap --trace-dir --json --trace-out "
                   "--daemon --help)");
        }
    }
    if (opts.daemonSocket.empty()) {
        // PFITS_DAEMON alone opts in, so a whole ctest/CI invocation
        // can be pointed at one daemon without touching any command
        // line.
        const char *env = std::getenv("PFITS_DAEMON");
        if (env && *env)
            opts.daemonSocket = env;
    }
    if (opts.tiles == 1) {
        // Same idea as PFITS_JOBS: the environment can re-shape a
        // whole sweep without editing command lines. The flag wins.
        const char *env = std::getenv("PFITS_TILES");
        if (env && *env)
            opts.tiles = parseTiles(env);
    }
    if (opts.tiles != 1 && opts.backend != SimBackend::Interp)
        reject("--tiles runs the interpreter tile loop; it cannot be "
               "combined with --backend fast");
    return opts;
}

/** Bench binary name from argv[0] (basename, for the manifest). */
inline std::string
toolName(const char *argv0)
{
    std::string_view path(argv0 ? argv0 : "bench");
    size_t slash = path.find_last_of('/');
    if (slash != std::string_view::npos)
        path = path.substr(slash + 1);
    return std::string(path.empty() ? "bench" : path);
}

/**
 * Per-invocation observability scaffolding. When --json was given it
 * installs a MetricRegistry for the engine's instrumentation sites at
 * construction and, in finish(), uninstalls it and writes the run
 * manifest; without --json it does nothing at all (the engine's
 * metric sites see no registry — the zero-overhead default).
 *
 * A custom-main bench keeps its own printing and adds:
 *
 *     auto opts = benchutil::parseArgs(argc, argv, "my_bench");
 *     benchutil::BenchHarness harness("my_bench", opts, note);
 *     Runner runner(harness.makeParams());
 *     ... build and print tables ...
 *     harness.addTable(table);
 *     return harness.finish();
 */
class BenchHarness
{
  public:
    BenchHarness(std::string tool, BenchOptions opts,
                 const char *note = nullptr)
        : tool_(std::move(tool)), opts_(std::move(opts)),
          note_(note ? note : ""), startNs_(monotonicNs()),
          startCpuMs_(processCpuMs())
    {
        // Distinct manifest identity per backend: aggregation and the
        // regression gate key benches by tool name, and an interp and
        // a fast run of the same binary are separate tracked series.
        if (opts_.backend != SimBackend::Interp)
            tool_ += std::string("+") + simBackendName(opts_.backend);
        // Same for the chip shape: a 4-tile run of a bench is a
        // different tracked series than its single-core run.
        if (opts_.tiles != 1)
            tool_ += "+tiles" + std::to_string(opts_.tiles);
        if (wantManifest())
            previous_ = MetricRegistry::install(&registry_);
        if (wantTrace()) {
            recorder_ = std::make_unique<TraceRecorder>();
            prevRecorder_ = TraceRecorder::install(recorder_.get());
            recorder_->nameThisThread("main");
        }
        if (!opts_.daemonSocket.empty()) {
            SvcClientConfig cfg = SvcClientConfig::fromEnv();
            cfg.socketPath = opts_.daemonSocket;
            svcClient_ = std::make_unique<SvcClient>(cfg);
            prevService_ = installSimService(svcClient_.get());
        }
    }

    ~BenchHarness()
    {
        // finish() normally restores these; cover early-exit paths.
        if (svcClient_) {
            installSimService(prevService_);
            svcClient_.reset();
        }
        if (wantManifest() && !finished_)
            MetricRegistry::install(previous_);
        if (recorder_ && !finished_)
            TraceRecorder::install(prevRecorder_);
    }

    BenchHarness(const BenchHarness &) = delete;
    BenchHarness &operator=(const BenchHarness &) = delete;

    const BenchOptions &options() const { return opts_; }
    bool wantManifest() const { return !opts_.jsonPath.empty(); }
    bool wantTrace() const { return !opts_.traceOutPath.empty(); }

    /** Fold the shared flags into @p params and record them. */
    void
    applyTo(ExperimentParams &params)
    {
        params.jobs = opts_.jobs;
        params.core.backend = opts_.backend;
        if (opts_.tiles != 1) {
            // Multi-tile means the full chip story: N tiles behind a
            // shared, MSI-coherent L2 (with one tile the chip config
            // stays default and the run is the plain Machine).
            params.chipSim.tiles = opts_.tiles;
            params.chipSim.sharedL2 = true;
        }
        if (opts_.traceOnTrap) {
            params.observers.traceOnTrap = true;
            params.observers.traceDepth = 64;
            params.observers.traceDir = opts_.traceDir;
        }
        noteParams(params);
    }

    /** Default ExperimentParams with the shared flags applied. */
    ExperimentParams
    makeParams()
    {
        ExperimentParams params;
        applyTo(params);
        return params;
    }

    /** Record @p params in the manifest (applyTo does this for you). */
    void
    noteParams(const ExperimentParams &params)
    {
        manifestParams_.recorded = true;
        manifestParams_.jobs = params.jobs;
        // Recorded only when non-default so pre-backend manifests
        // keep their exact bytes.
        manifestParams_.backend =
            params.core.backend == SimBackend::Interp
                ? ""
                : simBackendName(params.core.backend);
        manifestParams_.tiles = params.chipSim.tiles;
        manifestParams_.faultSeed =
            params.faults.enabled() ? params.faults.seed : 0;
        manifestParams_.faultRetries = params.faultRetries;
        manifestParams_.intervalInstructions =
            params.observers.intervalInstructions;
        manifestParams_.traceDepth = params.observers.traceDepth;
        manifestParams_.traceOnTrap = params.observers.traceOnTrap;
        manifestParams_.traceDir = params.observers.traceDir;
    }

    /** Register a result table for the manifest (copied). */
    void
    addTable(const Table &table)
    {
        tables_.push_back(std::make_unique<Table>(table));
    }

    /**
     * Write the manifest (when --json) and restore the previous metric
     * registry. @return the bench's exit code (nonzero = I/O failure).
     */
    int
    finish()
    {
        finished_ = true;
        if (svcClient_) {
            // Snapshot the daemon's store gauges while our registry
            // is still installed, then detach the service.
            if (wantManifest())
                svcClient_->recordServerStats();
            installSimService(prevService_);
            svcClient_.reset();
        }
        int rc = 0;
        if (wantTrace()) {
            // Quiesce-then-flush: detach the recorder before writing
            // so a straggling pool worker can never append mid-merge.
            // (By now the Runner is done, so the pool is idle.)
            TraceRecorder::install(prevRecorder_);
            std::string terr;
            if (!recorder_->writeFile(opts_.traceOutPath, &terr)) {
                // warn_once (not a silent drop): the path and errno
                // text say exactly which write failed and why, and
                // the nonzero exit makes CI notice.
                warn_once("%s: cannot write trace '%s': %s",
                          tool_.c_str(), opts_.traceOutPath.c_str(),
                          terr.c_str());
                rc = 1;
            }
        }
        if (!wantManifest())
            return rc;
        MetricRegistry::install(previous_);

        RunManifest manifest;
        manifest.tool = tool_;
        manifest.note = note_;
        manifest.params = manifestParams_;
        for (const SimCacheKey &k : SimCache::instance().keys())
            manifest.sims.push_back(
                {k.program, k.config, k.faults, k.observers});
        for (const auto &t : tables_)
            manifest.tables.push_back(t.get());
        manifest.metrics = &registry_;
        manifest.wallMs =
            static_cast<double>(monotonicNs() - startNs_) / 1e6;
        manifest.cpuMs = processCpuMs() - startCpuMs_;

        // Atomic publish: a reader (or a crash mid-write) never sees
        // a truncated manifest, only the old file or the new one.
        std::ostringstream os;
        manifest.write(os);
        os << "\n";
        std::string err;
        if (!writeFileAtomic(opts_.jsonPath, os.str(), &err)) {
            warn_once("%s: cannot write manifest '%s': %s",
                      tool_.c_str(), opts_.jsonPath.c_str(),
                      err.c_str());
            return 1;
        }
        return rc;
    }

  private:
    std::string tool_;
    BenchOptions opts_;
    std::string note_;
    uint64_t startNs_;
    double startCpuMs_;
    MetricRegistry registry_;
    MetricRegistry *previous_ = nullptr;
    std::unique_ptr<TraceRecorder> recorder_;
    TraceRecorder *prevRecorder_ = nullptr;
    std::unique_ptr<SvcClient> svcClient_;
    SimService *prevService_ = nullptr;
    ManifestParams manifestParams_;
    std::vector<std::unique_ptr<Table>> tables_;
    bool finished_ = false;
};

/**
 * Run one figure builder and print its table plus the paper note.
 * With "--csv" the table is emitted as CSV (for plotting scripts) and
 * the note is suppressed. See the file comment for the full flag set;
 * the printed table is byte-identical whatever the flags.
 */
inline int
runFigure(Table (*builder)(Runner &), const char *paper_note, int argc,
          char **argv)
{
    const std::string tool = toolName(argc > 0 ? argv[0] : nullptr);
    BenchOptions opts = parseArgs(argc, argv, tool.c_str());
    try {
        BenchHarness harness(tool, opts, paper_note);
        Runner runner(harness.makeParams());
        Table table = builder(runner);
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\npaper reports: " << paper_note << "\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace pfits::benchutil

#define PFITS_FIG_MAIN(builder, note)                                   \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return pfits::benchutil::runFigure(builder, note, argc, argv);  \
    }

#endif // POWERFITS_BENCH_FIG_UTIL_HH
