/** @file Reproduces Figure 13: I-cache misses per million accesses. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig13MissRate,
               "half-sized FITS8 caches have no more misses than "
               "full-sized ARM16")
