/**
 * @file
 * Extension E1: code-size comparison against a CodePack-like compressed
 * baseline (the paper's related work, Section 2 [10][11]) alongside
 * Figure 5's ARM/THUMB/FITS columns. Compression reaches similar or
 * smaller footprints than FITS but must decompress on the fetch path,
 * so it does not halve per-fetch output switching the way a genuine
 * 16-bit ISA does — the paper's argument for synthesis over
 * compression.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"
#include "mibench/mibench.hh"
#include "thumb/codepack.hh"

using namespace pfits;

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Runner runner(harness.makeParams());
        Table table("Extension E1: code size vs a CodePack-like "
                    "compressor (% of ARM)");
        table.setHeader({"benchmark", "THUMB", "FITS", "CodePack",
                         "CodePack+dict"});
        double t = 0, f = 0, c = 0, cd = 0;
        size_t n = 0;
        for (const auto &info : mibench::suite()) {
            const BenchResult &bench = runner.get(info.name);
            CodepackStats pack =
                codepackEstimate(info.build().program);
            double arm = bench.armBytes;
            double thumb = 100.0 * bench.thumbBytes / arm;
            double fits = 100.0 * bench.fitsBytes / arm;
            double packed = 100.0 * pack.codeBytes() / arm;
            double packed_dict =
                100.0 *
                (pack.codeBytes() + pack.dictionaryBits / 8.0) / arm;
            table.addRow(info.name, {thumb, fits, packed, packed_dict},
                         1);
            t += thumb;
            f += fits;
            c += packed;
            cd += packed_dict;
            ++n;
        }
        table.addRow("average",
                     {t / n, f / n, c / n, cd / n}, 1);
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nnote: compressed code is decompressed on "
                         "the fetch path, so unlike FITS it does not "
                         "halve I-cache output switching (paper "
                         "Section 2).\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
