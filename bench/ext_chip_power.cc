/**
 * @file
 * Extension E8: chip-level scaling of the FITS story. The paper
 * evaluates one core; this extension asks what happens when N tiles —
 * each running its own kernel copy behind private L1s — share one
 * MSI-coherent L2 (sim/chip.hh). For tile counts 1/2/4/8 it reports
 * aggregate chip power (N tiles plus the shared-L2/directory uncore)
 * and mean per-tile IPC for ARM16 vs FITS16, over a six-kernel
 * cross-section of the suite. The FITS question at chip scale: do the
 * per-core I-cache savings survive — and compound — when multiplied
 * by N and taxed by the uncore?
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"
#include "power/chip_power.hh"

using namespace pfits;

namespace
{

/**
 * One kernel per suite category, small enough that the interp-only
 * chip runs keep the bench quick while still spanning control-heavy
 * (dijkstra), data-heavy (qsort), and kernel-loop (sha, crc32, gsm,
 * bitcount) behavior.
 */
const std::vector<std::string> kKernels = {
    "bitcount", "qsort", "dijkstra", "sha", "crc32", "gsm",
};

constexpr unsigned kTileCounts[] = {1, 2, 4, 8};

/** One (tile count, config) sweep point, aggregated over a chip run. */
struct Point
{
    double chipW = 0;       //!< aggregate chip power (tiles + uncore)
    double ipcPerTile = 0;  //!< mean per-tile IPC
    double l2Mpki = 0;      //!< shared-L2 misses per kilo-instruction
    double invalPerMi = 0;  //!< invalidations per million instructions
};

Point
evaluate(Runner &runner, const std::string &bench, ConfigId id)
{
    const ConfigResult &cfg = runner.get(bench).of(id);
    Point p;
    if (!cfg.chipRun.ranAsChip()) {
        // tiles = 1: the plain single-core run, no uncore to pay for.
        p.chipW = cfg.chip.totalW();
        p.ipcPerTile = cfg.run.ipc();
        return p;
    }

    const ChipRunStats &chip = cfg.chipRun;
    const size_t tiles = chip.tileCycles.size();
    const double seconds =
        static_cast<double>(chip.chipCycles) / cfg.run.clockHz;

    // Homogeneous tiles: every tile executes the same program behind
    // identical private L1s, so tile 0's detailed energy (cfg.chip,
    // evaluated by the Runner) stands for each of the N. The uncore
    // charges the shared-L2 array, the MSI directory, and the line
    // traffic that coherence puts on the interconnect.
    UncorePowerModel uncore(runner.params().uncore);
    const double tiles_j =
        cfg.chip.totalJ() * static_cast<double>(tiles);
    const double uncore_j =
        uncore.evaluate(chip.l2, chip.coherence, seconds).totalJ();
    p.chipW = seconds != 0 ? (tiles_j + uncore_j) / seconds : 0;

    double ipc_sum = 0;
    uint64_t instr_sum = 0;
    for (size_t t = 0; t < tiles; ++t) {
        if (chip.tileCycles[t])
            ipc_sum += static_cast<double>(chip.tileInstructions[t]) /
                       static_cast<double>(chip.tileCycles[t]);
        instr_sum += chip.tileInstructions[t];
    }
    p.ipcPerTile = ipc_sum / static_cast<double>(tiles);
    if (instr_sum) {
        p.l2Mpki = static_cast<double>(chip.l2.misses()) * 1000.0 /
                   static_cast<double>(instr_sum);
        p.invalPerMi =
            static_cast<double>(chip.coherence.invalidations +
                                chip.coherence.backInvalidations) *
            1e6 / static_cast<double>(instr_sum);
    }
    return p;
}

/** Mean of evaluate() over the kernel cross-section. */
Point
sweepPoint(Runner &runner, ConfigId id)
{
    Point mean;
    for (const std::string &bench : kKernels) {
        Point p = evaluate(runner, bench, id);
        mean.chipW += p.chipW;
        mean.ipcPerTile += p.ipcPerTile;
        mean.l2Mpki += p.l2Mpki;
        mean.invalPerMi += p.invalPerMi;
    }
    const double n = static_cast<double>(kKernels.size());
    mean.chipW /= n;
    mean.ipcPerTile /= n;
    mean.l2Mpki /= n;
    mean.invalPerMi /= n;
    return mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);

        Table table("Extension E8: aggregate chip power and per-tile "
                    "IPC vs tile count (6-kernel mean)");
        table.setHeader({"tiles", "ARM16 mW", "FITS16 mW", "saving %",
                         "ARM16 IPC/tile", "FITS16 IPC/tile",
                         "FITS16 L2 MPKI", "FITS16 inval/Mi"});

        for (unsigned tiles : kTileCounts) {
            // One Runner per tile count: the chip shape joins the
            // SimCache memo key, so nothing here re-simulates a
            // single-core entry (or vice versa).
            ExperimentParams params = harness.makeParams();
            if (tiles != 1) {
                params.chipSim.tiles = tiles;
                params.chipSim.sharedL2 = true;
            } else {
                params.chipSim = ChipConfig{};
            }
            Runner runner(params);
            Point arm = sweepPoint(runner, ConfigId::ARM16);
            Point fits = sweepPoint(runner, ConfigId::FITS16);
            double saving =
                arm.chipW != 0 ? 100.0 * (1.0 - fits.chipW / arm.chipW)
                               : 0.0;
            table.addRow(std::to_string(tiles),
                         {arm.chipW * 1e3, fits.chipW * 1e3, saving,
                          arm.ipcPerTile, fits.ipcPerTile, fits.l2Mpki,
                          fits.invalPerMi},
                         2);
        }

        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout
                << "\nreading: per-core FITS savings multiply across "
                   "tiles while the shared-L2 uncore grows only with "
                   "miss traffic, so the chip-level saving holds near "
                   "the single-core figure at every tile count.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
