/**
 * @file
 * Extension E2 (DESIGN.md §6 item 4): the fetch-packing ablation. The
 * paper's average-power model charges one I-cache access per
 * instruction (its Figure 8 shows FITS16's internal power ~ ARM16's,
 * which pins that choice). A front-end with a one-word fetch buffer
 * would instead access the array once per 32-bit word — two FITS
 * instructions per access — roughly halving internal power at equal
 * cache size. This bench quantifies that headroom.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "exp/parallel.hh"
#include "fig_util.hh"
#include "power/cache_power.hh"

using namespace pfits;

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        ExperimentParams plain_params;
        ExperimentParams packed_params;
        packed_params.core.packedFetch = true;
        harness.applyTo(plain_params);
        harness.applyTo(packed_params);
        Runner plain(plain_params);
        Runner packed(packed_params);

        Table table("Extension E2: fetch packing (FITS16 vs ARM16)");
        table.setHeader({"benchmark", "accesses/instr",
                         "internal saving %", "packed acc/instr",
                         "packed internal saving %"});
        double s1 = 0, s2 = 0;
        size_t n = 0;
        for (const auto *bench : plain.all()) {
            const BenchResult &p = packed.get(bench->name);
            const RunResult &plain_run =
                bench->of(ConfigId::FITS16).run;
            const RunResult &packed_run = p.of(ConfigId::FITS16).run;
            double plain_saving =
                100.0 * bench->saving(
                            ConfigId::FITS16,
                            CachePowerBreakdown::Component::INTERNAL);
            double packed_saving =
                100.0 * p.saving(
                            ConfigId::FITS16,
                            CachePowerBreakdown::Component::INTERNAL);
            table.addRow(
                bench->name,
                {static_cast<double>(plain_run.icache.accesses()) /
                     plain_run.instructions,
                 plain_saving,
                 static_cast<double>(packed_run.icache.accesses()) /
                     packed_run.instructions,
                 packed_saving},
                2);
            s1 += plain_saving;
            s2 += packed_saving;
            ++n;
        }
        table.addRow("average", {1.0, s1 / n, 0.5, s2 / n}, 2);
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nreading: with a fetch buffer, the 16-bit "
                         "stream's internal power saving jumps from "
                         "~0% to ~50% at equal cache size — headroom "
                         "beyond the paper's model.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
