/**
 * @file
 * Extension E6: soft-error resilience as a side effect of code density.
 *
 * The paper sells FITS on power, but the same halved I-cache footprint
 * also halves the bit-cells a particle strike can corrupt. This bench
 * makes that argument quantitative across the 21-kernel suite, on the
 * two extreme configurations (ARM16: 16 KiB I-cache; FITS8: 8 KiB):
 *
 *  1. a golden-output gate at fault rate zero (every kernel must match
 *     its reference checksum on both ISAs before any fault talk),
 *  2. an upset sweep at constant particle flux — the injection interval
 *     scales with cache size, so the smaller FITS cache sees
 *     proportionally fewer strikes per cycle of residency,
 *  3. parity on/off detection coverage and the retry-with-reload cost,
 *  4. a decoder-config corruption experiment: seeded single-bit flips
 *     of each kernel's saved configuration, all of which the serialize
 *     checksum must catch.
 *
 * Everything is seeded; two invocations print byte-identical reports.
 * "--trace-on-trap" arms a bounded flight recorder on every simulated
 * run: each parity machine-check appends its last 64 events as JSONL
 * to <kernel>_<ARM16|FITS8>.trace.jsonl in the working directory (the
 * report itself is unchanged — observers never alter results).
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "fig_util.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/serialize.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

using namespace pfits;

namespace
{

bool g_trace_on_trap = false;
std::string g_trace_dir = ".";

/** Base mean instructions between upsets for the 16 KiB cache. */
constexpr uint64_t kBaseInterval = 5000;
constexpr uint32_t kLargeCacheBytes = 16 * 1024;
constexpr uint32_t kSmallCacheBytes = 8 * 1024;
constexpr unsigned kMaxRetries = 3;
constexpr int kConfigFlips = 64;

/** One kernel's prebuilt front-ends (built once, run many times). */
struct BenchSetup
{
    std::string name;
    uint32_t expected = 0;
    std::unique_ptr<ArmFrontEnd> arm;
    std::unique_ptr<FitsFrontEnd> fits;
    std::string configText; //!< saved decoder configuration
};

BenchSetup
buildBench(const mibench::BenchInfo &info)
{
    BenchSetup setup;
    setup.name = info.name;
    mibench::Workload w = info.build();
    setup.expected = w.expected;
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
    FitsProgram fits_prog = translateProgram(w.program, isa, profile);
    setup.configText = saveFitsIsa(isa);
    setup.arm = std::make_unique<ArmFrontEnd>(w.program);
    setup.fits = std::make_unique<FitsFrontEnd>(std::move(fits_prog));
    return setup;
}

struct FaultyRunStats
{
    RunOutcome outcome = RunOutcome::Trapped;
    uint64_t cycles = 0;
    uint64_t injected = 0;
    uint64_t detected = 0;
    uint64_t escaped = 0;
    bool goldenOk = false;
    bool sdc = false; //!< completed with the wrong answer
    unsigned retries = 0;
};

/**
 * Run one (kernel, ISA) pair under a fault plan, with the experiment
 * harness's retry-with-reload policy on parity machine-checks. At
 * constant flux the injection interval scales with cache size.
 */
FaultyRunStats
faultyRun(const BenchSetup &setup, bool is_fits, bool parity,
          uint64_t base_interval, uint64_t seed)
{
    const FrontEnd &fe =
        is_fits ? static_cast<const FrontEnd &>(*setup.fits)
                : static_cast<const FrontEnd &>(*setup.arm);
    CoreConfig core;
    core.icache.sizeBytes = is_fits ? kSmallCacheBytes
                                    : kLargeCacheBytes;
    core.icache.parity = parity;

    FaultParams fp;
    fp.seed = seed ^ configChecksum(setup.name) ^
              (static_cast<uint64_t>(is_fits) << 56) ^
              (static_cast<uint64_t>(parity) << 57);
    if (base_interval)
        fp.icacheMeanInterval =
            base_interval * kLargeCacheBytes / core.icache.sizeBytes;
    std::unique_ptr<FaultPlan> plan;
    if (fp.enabled())
        plan = std::make_unique<FaultPlan>(fp);

    // The flight recorder persists across the retry loop: every parity
    // machine-check appends one bounded dump, so a multi-retry run
    // leaves one trace per attempt that died.
    std::unique_ptr<TraceObserver> tracer;
    ObserverList observers;
    if (g_trace_on_trap) {
        tracer = std::make_unique<TraceObserver>(64);
        tracer->setPath(g_trace_dir + "/" + setup.name + "_" +
                        (is_fits ? "FITS8" : "ARM16") +
                        ".trace.jsonl");
        observers.add(tracer.get());
    }
    ObserverList *obs = tracer ? &observers : nullptr;

    FaultyRunStats out;
    RunResult rr = Machine(fe, core).run(plan.get(), obs);
    while (rr.outcome == RunOutcome::FaultDetected &&
           out.retries < kMaxRetries) {
        ++out.retries;
        rr = Machine(fe, core).run(plan.get(), obs);
    }

    out.outcome = rr.outcome;
    out.cycles = rr.cycles;
    if (plan) {
        out.injected = plan->injected(FaultTarget::ICACHE);
        out.detected = plan->detected(FaultTarget::ICACHE);
        out.escaped = plan->escaped(FaultTarget::ICACHE);
    }
    out.goldenOk = rr.outcome == RunOutcome::Completed &&
                   !rr.io.emitted.empty() &&
                   rr.io.emitted[0] == setup.expected;
    out.sdc = rr.outcome == RunOutcome::Completed && !out.goldenOk;
    return out;
}

/** Upsets per GiB-cycle of cache residency (cross-section metric). */
double
upsetsPerGibCycle(const FaultyRunStats &s, uint32_t cache_bytes)
{
    double exposure = static_cast<double>(cache_bytes) *
                      static_cast<double>(s.cycles);
    return exposure > 0
               ? static_cast<double>(s.injected) / exposure * (1 << 30)
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    const bool csv = opts.csv;
    g_trace_on_trap = opts.traceOnTrap;
    g_trace_dir = opts.traceDir;
    setQuiet(true);

    try {
        benchutil::BenchHarness harness(tool, opts);
        std::vector<BenchSetup> setups;
        for (const auto &info : mibench::suite())
            setups.push_back(buildBench(info));

        // --- 1. Golden gate at fault rate zero -----------------------
        for (const BenchSetup &s : setups) {
            for (bool is_fits : {false, true}) {
                FaultyRunStats clean =
                    faultyRun(s, is_fits, false, 0, 0);
                if (!clean.goldenOk)
                    fatal("%s/%s failed its golden checksum with "
                          "faults disabled",
                          s.name.c_str(), is_fits ? "FITS8" : "ARM16");
            }
        }

        // --- 2+3. Upset sweep at constant flux -----------------------
        Table sweep("Extension E6: soft-error sweep "
                    "(constant flux, parity off)");
        sweep.setHeader({"benchmark", "ARM16 inj", "FITS8 inj",
                         "inj ratio", "ARM16 upsets/GiBcyc",
                         "FITS8 upsets/GiBcyc", "SDC"});
        double ratio_sum = 0;
        uint64_t sdc_total = 0;
        for (const BenchSetup &s : setups) {
            FaultyRunStats arm =
                faultyRun(s, false, false, kBaseInterval, 0xe6);
            FaultyRunStats fits =
                faultyRun(s, true, false, kBaseInterval, 0xe6);
            double ratio =
                arm.injected
                    ? static_cast<double>(fits.injected) / arm.injected
                    : 0.0;
            ratio_sum += ratio;
            sdc_total += (arm.sdc ? 1 : 0) + (fits.sdc ? 1 : 0);
            sweep.addRow(s.name,
                         {static_cast<double>(arm.injected),
                          static_cast<double>(fits.injected), ratio,
                          upsetsPerGibCycle(arm, kLargeCacheBytes),
                          upsetsPerGibCycle(fits, kSmallCacheBytes),
                          static_cast<double>((arm.sdc ? 1 : 0) +
                                              (fits.sdc ? 1 : 0))},
                         3);
        }
        sweep.addRow("average",
                     {0, 0, ratio_sum / setups.size(), 0, 0,
                      static_cast<double>(sdc_total)},
                     3);

        Table coverage("Extension E6: parity coverage and retry cost");
        coverage.setHeader({"benchmark", "config", "injected",
                            "detected", "escaped", "coverage %",
                            "retries", "outcome"});
        for (const BenchSetup &s : setups) {
            for (bool is_fits : {false, true}) {
                for (bool parity : {false, true}) {
                    FaultyRunStats r = faultyRun(
                        s, is_fits, parity, kBaseInterval, 0xe6);
                    uint64_t consumed = r.detected + r.escaped;
                    double cover =
                        consumed ? 100.0 *
                                       static_cast<double>(r.detected) /
                                       static_cast<double>(consumed)
                                 : 100.0;
                    std::string cfg =
                        std::string(is_fits ? "FITS8" : "ARM16") +
                        (parity ? "+par" : "");
                    coverage.addRow(
                        {s.name, cfg, std::to_string(r.injected),
                         std::to_string(r.detected),
                         std::to_string(r.escaped),
                         formatDouble(cover, 1),
                         std::to_string(r.retries),
                         runOutcomeName(r.outcome)});
                }
            }
        }

        // --- 4. Decoder-config corruption ----------------------------
        Table config("Extension E6: decoder-config corruption "
                     "(single-bit flips)");
        config.setHeader({"benchmark", "config bytes", "flips",
                          "detected", "coverage %"});
        for (const BenchSetup &s : setups) {
            FaultParams fp;
            fp.seed = 0xc0f1 ^ configChecksum(s.name);
            FaultPlan plan(fp);
            int caught = 0;
            for (int i = 0; i < kConfigFlips; ++i) {
                std::string mutated = s.configText;
                plan.corruptTextBit(mutated);
                try {
                    loadFitsIsa(mutated);
                } catch (const ConfigError &) {
                    ++caught;
                }
            }
            if (caught != kConfigFlips)
                fatal("%s: %d/%d config corruptions escaped the "
                      "checksum", s.name.c_str(), kConfigFlips - caught,
                      kConfigFlips);
            config.addRow(s.name,
                          {static_cast<double>(s.configText.size()),
                           static_cast<double>(kConfigFlips),
                           static_cast<double>(caught), 100.0},
                          1);
        }

        if (csv) {
            sweep.printCsv(std::cout);
            coverage.printCsv(std::cout);
            config.printCsv(std::cout);
        } else {
            std::cout << "golden gate: all " << setups.size()
                      << " kernels match their reference checksums on "
                         "ARM16 and FITS8 with faults disabled\n\n";
            sweep.print(std::cout);
            std::cout << "\n";
            coverage.print(std::cout);
            std::cout << "\n";
            config.print(std::cout);
            std::cout
                << "\nreading: at constant flux the 8 KiB FITS cache "
                   "absorbs about half the upsets of the 16 KiB ARM "
                   "cache for the same work; per-line parity converts "
                   "every consumed upset into a detected machine-check "
                   "(100% coverage) at the cost of reload retries, and "
                   "the config checksum catches every single-bit flip "
                   "of the stored decoder state.\n";
        }
        harness.addTable(sweep);
        harness.addTable(coverage);
        harness.addTable(config);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
