/**
 * @file
 * Extension E7: phase behaviour of I-cache activity, ARM16 vs FITS16.
 *
 * The paper's evaluation (like sim-panalyzer's) reports whole-run
 * averages, but the signals its power model consumes — IPC, miss rate,
 * fetch-bus toggle rate — move with program phases, and related work
 * (arXiv:2409.08286) analyzes exactly these per-phase I-cache energy
 * curves for extensible processors. This bench carves each kernel's
 * run into ten equal-instruction phases with an IntervalStatsObserver
 * and prints the per-phase series for the paper's main comparison pair
 * (ARM16 vs FITS16, both 16 KiB I-caches): where in the run the
 * synthesized ISA's switching savings come from, and whether its miss
 * behaviour is uniform or phase-concentrated.
 *
 * Everything is deterministic; two invocations print byte-identical
 * reports.
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.hh"
#include "fig_util.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "power/cache_power.hh"
#include "power/tech.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

using namespace pfits;

namespace
{

/** Kernels with visibly different phase structure (setup/core/check). */
const char *const kKernels[] = {"jpeg.encode", "fft", "sha", "dijkstra"};
constexpr int kPhases = 10;

/** One kernel's prebuilt front-ends (built once, run twice per ISA). */
struct BenchSetup
{
    std::string name;
    std::unique_ptr<ArmFrontEnd> arm;
    std::unique_ptr<FitsFrontEnd> fits;
};

BenchSetup
buildBench(const mibench::BenchInfo &info)
{
    BenchSetup setup;
    setup.name = info.name;
    mibench::Workload w = info.build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
    FitsProgram fits_prog = translateProgram(w.program, isa, profile);
    setup.arm = std::make_unique<ArmFrontEnd>(w.program);
    setup.fits = std::make_unique<FitsFrontEnd>(std::move(fits_prog));
    return setup;
}

/** The phase series of one (kernel, ISA) run, plus its power model. */
struct PhaseSeries
{
    std::vector<IntervalSample> samples;
    CoreConfig core;
};

/**
 * Two-pass measurement: a plain run sizes the interval so the series
 * has kPhases equal-instruction samples (the last absorbs the partial
 * tail and the pipeline drain), then an instrumented run records them.
 */
PhaseSeries
measure(const FrontEnd &fe)
{
    PhaseSeries out;
    // Both sides of the comparison run the paper's large 16 KiB
    // I-cache: the phase curves isolate the ISA, not the cache size.
    RunResult plain = Machine(fe, out.core).run();
    uint64_t every =
        (plain.instructions + kPhases - 1) / kPhases;

    IntervalStatsObserver intervals(every);
    ObserverList list;
    list.add(&intervals);
    Machine(fe, out.core).run(nullptr, &list);
    out.samples = intervals.take();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    const bool csv = opts.csv;

    try {
        benchutil::BenchHarness harness(tool, opts);
        std::vector<Table> tables;
        for (const char *name : kKernels) {
            BenchSetup setup = buildBench(mibench::findBench(name));
            PhaseSeries arm = measure(*setup.arm);
            PhaseSeries fits = measure(*setup.fits);

            TechParams tech;
            tech.clockHz = arm.core.clockHz;
            CachePowerModel arm_model(arm.core.icache, tech);
            CachePowerModel fits_model(fits.core.icache, tech);

            Table t("Extension E7: phase behaviour of " +
                    setup.name + " (per-phase, ARM16 vs FITS16)");
            t.setHeader({"phase", "ARM ipc", "FITS ipc", "ARM mpmi",
                         "FITS mpmi", "ARM tog%", "FITS tog%",
                         "ARM uJ", "FITS uJ"});
            size_t rows =
                std::max(arm.samples.size(), fits.samples.size());
            for (size_t p = 0; p < rows; ++p) {
                auto cell = [&](const PhaseSeries &s,
                                const CachePowerModel &model,
                                auto metric) {
                    return p < s.samples.size()
                               ? formatDouble(metric(s.samples[p],
                                                     model), 3)
                               : std::string("-");
                };
                auto ipc = [](const IntervalSample &s,
                              const CachePowerModel &) {
                    return s.ipc();
                };
                auto mpmi = [](const IntervalSample &s,
                               const CachePowerModel &) {
                    return s.missesPerMillion();
                };
                auto tog = [](const IntervalSample &s,
                              const CachePowerModel &) {
                    return 100.0 * s.toggleRate();
                };
                auto uj = [](const IntervalSample &s,
                             const CachePowerModel &m) {
                    return m.intervalEnergyJ(s) * 1e6;
                };
                t.addRow({std::to_string(p),
                          cell(arm, arm_model, ipc),
                          cell(fits, fits_model, ipc),
                          cell(arm, arm_model, mpmi),
                          cell(fits, fits_model, mpmi),
                          cell(arm, arm_model, tog),
                          cell(fits, fits_model, tog),
                          cell(arm, arm_model, uj),
                          cell(fits, fits_model, uj)});
            }
            tables.push_back(std::move(t));
        }

        bool first = true;
        for (Table &t : tables) {
            if (!first)
                std::cout << "\n";
            first = false;
            if (csv)
                t.printCsv(std::cout);
            else
                t.print(std::cout);
        }
        if (!csv) {
            std::cout
                << "\nreading: the FITS energy advantage holds in "
                   "every phase, not just on average — the 16-bit "
                   "stream delivers half the bits even where its "
                   "denser encodings toggle at a higher per-bit rate "
                   "— and miss activity concentrates in the first "
                   "(setup) and last (result-check) phases, where "
                   "each kernel's working set is installed.\n";
        }
        for (const Table &t : tables)
            harness.addTable(t);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
