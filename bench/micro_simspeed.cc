/**
 * @file
 * A4: google-benchmark microbenchmarks of the infrastructure itself —
 * simulator throughput, programmable decode, synthesis and translation
 * latency, and the raw cache model. Useful when extending the library;
 * not part of the paper reproduction.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "exp/figures.hh"
#include "exp/simcache.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

using namespace pfits;

namespace
{

const Program &
crcProgram()
{
    static const Program prog = mibench::buildCrc32().program;
    return prog;
}

/** Arg(0) = interp, Arg(1) = fast — the backends run side by side so
 * one invocation reports the speedup ratio in instructions/second. */
CoreConfig
coreForArg(benchmark::State &state)
{
    CoreConfig core;
    core.backend =
        state.range(0) ? SimBackend::Fast : SimBackend::Interp;
    state.SetLabel(simBackendName(core.backend));
    return core;
}

void
BM_ArmSimulate(benchmark::State &state)
{
    ArmFrontEnd fe(crcProgram());
    const CoreConfig core = coreForArg(state);
    uint64_t instructions = 0;
    for (auto _ : state) {
        Machine machine(fe, core);
        RunResult rr = machine.run();
        instructions += rr.instructions;
        benchmark::DoNotOptimize(rr.cycles);
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArmSimulate)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_FitsSimulate(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsFrontEnd fe(translateProgram(crcProgram(), isa, profile));
    const CoreConfig core = coreForArg(state);
    uint64_t instructions = 0;
    for (auto _ : state) {
        Machine machine(fe, core);
        RunResult rr = machine.run();
        instructions += rr.instructions;
        // Matches BM_ArmSimulate: without this the compiler may elide
        // the run and skew the ARM-vs-FITS throughput comparison.
        benchmark::DoNotOptimize(rr.cycles);
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FitsSimulate)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Observer-layer overhead: the same FITS simulation with Arg(n) no-op
 * external observers attached. Arg(0) passes no ObserverList at all —
 * the zero-observer fast path whose cost the probe refactor promises
 * is unmeasurable (compare against BM_FitsSimulate; numbers recorded
 * in docs/OBSERVABILITY.md).
 */
void
BM_FitsSimulateObservers(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsFrontEnd fe(translateProgram(crcProgram(), isa, profile));

    struct NoopObserver final : SimObserver
    {
    };
    const size_t n = static_cast<size_t>(state.range(0));
    std::vector<NoopObserver> noops(n);
    ObserverList list;
    for (NoopObserver &o : noops)
        list.add(&o);

    uint64_t instructions = 0;
    for (auto _ : state) {
        Machine machine(fe, CoreConfig{});
        RunResult rr =
            machine.run(nullptr, n ? &list : nullptr);
        instructions += rr.instructions;
        benchmark::DoNotOptimize(rr.cycles);
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FitsSimulateObservers)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * End-to-end figure sweep through the parallel experiment engine: all
 * 12 paper figures over the 21-kernel × 4-config suite. Arg(0) clears
 * the process-wide SimCache each iteration (cold: every simulation
 * runs); Arg(1) keeps it warm (steady-state of a bench binary touching
 * several figures: pure table assembly, zero fresh simulations).
 */
void
BM_SuiteSweep(benchmark::State &state)
{
    const bool warm = state.range(0) != 0;
    Table (*const builders[])(Runner &) = {
        fig3StaticMapping,  fig4DynamicMapping, fig5CodeSize,
        fig6PowerBreakdown, fig7SwitchingSaving, fig8InternalSaving,
        fig9LeakageSaving,  fig10PeakSaving,     fig11TotalCacheSaving,
        fig12ChipSaving,    fig13MissRate,       fig14Ipc};
    uint64_t tables = 0;
    for (auto _ : state) {
        if (!warm)
            SimCache::instance().clear();
        Runner runner;
        for (auto *builder : builders) {
            Table table = builder(runner);
            benchmark::DoNotOptimize(table.rows());
            ++tables;
        }
    }
    state.counters["tables/s"] = benchmark::Counter(
        static_cast<double>(tables), benchmark::Counter::kIsRate);
    state.counters["jobs"] =
        static_cast<double>(ThreadPool::shared().jobs());
}
BENCHMARK(BM_SuiteSweep)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_Profile(benchmark::State &state)
{
    for (auto _ : state) {
        ProfileInfo info = profileProgram(crcProgram());
        benchmark::DoNotOptimize(info.totalDynamic);
    }
}
BENCHMARK(BM_Profile)->Unit(benchmark::kMillisecond);

void
BM_Synthesize(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    for (auto _ : state) {
        FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
        benchmark::DoNotOptimize(isa.slots.size());
    }
}
BENCHMARK(BM_Synthesize)->Unit(benchmark::kMillisecond);

void
BM_Translate(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    for (auto _ : state) {
        FitsProgram fits = translateProgram(crcProgram(), isa, profile);
        benchmark::DoNotOptimize(fits.code.size());
    }
}
BENCHMARK(BM_Translate)->Unit(benchmark::kMillisecond);

void
BM_ProgrammableDecode(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsProgram fits = translateProgram(crcProgram(), isa, profile);
    size_t i = 0;
    for (auto _ : state) {
        MicroOp uop;
        benchmark::DoNotOptimize(
            isa.decode(fits.code[i % fits.code.size()], uop));
        ++i;
    }
}
BENCHMARK(BM_ProgrammableDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = static_cast<uint32_t>(state.range(0));
    cfg.lineBytes = 32;
    Cache cache(cfg);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18), false).hit);
    }
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8)->Arg(32);

} // namespace

BENCHMARK_MAIN();
