/**
 * @file
 * A4: google-benchmark microbenchmarks of the infrastructure itself —
 * simulator throughput, programmable decode, synthesis and translation
 * latency, and the raw cache model. Useful when extending the library;
 * not part of the paper reproduction.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"

using namespace pfits;

namespace
{

const Program &
crcProgram()
{
    static const Program prog = mibench::buildCrc32().program;
    return prog;
}

void
BM_ArmSimulate(benchmark::State &state)
{
    ArmFrontEnd fe(crcProgram());
    uint64_t instructions = 0;
    for (auto _ : state) {
        Machine machine(fe, CoreConfig{});
        RunResult rr = machine.run();
        instructions += rr.instructions;
        benchmark::DoNotOptimize(rr.cycles);
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArmSimulate)->Unit(benchmark::kMillisecond);

void
BM_FitsSimulate(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsFrontEnd fe(translateProgram(crcProgram(), isa, profile));
    uint64_t instructions = 0;
    for (auto _ : state) {
        Machine machine(fe, CoreConfig{});
        RunResult rr = machine.run();
        instructions += rr.instructions;
    }
    state.counters["Minstr/s"] = benchmark::Counter(
        static_cast<double>(instructions) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FitsSimulate)->Unit(benchmark::kMillisecond);

void
BM_Profile(benchmark::State &state)
{
    for (auto _ : state) {
        ProfileInfo info = profileProgram(crcProgram());
        benchmark::DoNotOptimize(info.totalDynamic);
    }
}
BENCHMARK(BM_Profile)->Unit(benchmark::kMillisecond);

void
BM_Synthesize(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    for (auto _ : state) {
        FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
        benchmark::DoNotOptimize(isa.slots.size());
    }
}
BENCHMARK(BM_Synthesize)->Unit(benchmark::kMillisecond);

void
BM_Translate(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    for (auto _ : state) {
        FitsProgram fits = translateProgram(crcProgram(), isa, profile);
        benchmark::DoNotOptimize(fits.code.size());
    }
}
BENCHMARK(BM_Translate)->Unit(benchmark::kMillisecond);

void
BM_ProgrammableDecode(benchmark::State &state)
{
    ProfileInfo profile = profileProgram(crcProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsProgram fits = translateProgram(crcProgram(), isa, profile);
    size_t i = 0;
    for (auto _ : state) {
        MicroOp uop;
        benchmark::DoNotOptimize(
            isa.decode(fits.code[i % fits.code.size()], uop));
        ++i;
    }
}
BENCHMARK(BM_ProgrammableDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = static_cast<uint32_t>(state.range(0));
    cfg.lineBytes = 32;
    Cache cache(cfg);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 18), false).hit);
    }
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(8)->Arg(32);

} // namespace

BENCHMARK_MAIN();
