/**
 * @file
 * Ablation A5: switch off individual synthesis features — fused-shift
 * AIS slots and two-operand forms (the paper's Section 3.3 heuristics)
 * — and measure what each buys in mapping coverage and code size.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"

using namespace pfits;

namespace
{

const char *kBenches[] = {
    "crc32", "sha", "adpcm.encode", "bitcount", "fft", "qsort",
};

void
row(benchutil::BenchHarness &harness, Table &table, const char *label,
    const SynthParams &sp)
{
    ExperimentParams params;
    params.synth = sp;
    harness.applyTo(params);
    Runner runner(params);
    double smap = 0, dmap = 0, code = 0;
    for (const char *name : kBenches) {
        const BenchResult &b = runner.get(name);
        smap += b.mapping.staticRate();
        dmap += b.mapping.dynRate();
        code += static_cast<double>(b.fitsBytes) / b.armBytes;
    }
    double n = static_cast<double>(std::size(kBenches));
    table.addRow(label,
                 {100 * smap / n, 100 * dmap / n, 100 * code / n}, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Ablation A5: synthesis feature knockout "
                    "(suite subset)");
        table.setHeader({"configuration", "static map %", "dyn map %",
                         "code vs ARM %"});

        SynthParams full;
        row(harness, table, "full synthesis", full);

        SynthParams no_fuse = full;
        no_fuse.enableFusedShifts = false;
        row(harness, table, "- fused shifts", no_fuse);

        SynthParams no_twoop = full;
        no_twoop.enableTwoOperand = false;
        row(harness, table, "- two-operand forms", no_twoop);

        SynthParams bare = full;
        bare.enableFusedShifts = false;
        bare.enableTwoOperand = false;
        row(harness, table, "- both", bare);

        SynthParams wide = full;
        wide.forceWideRegFields = true;
        row(harness, table, "forced 4-bit registers", wide);

        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nexpected shape: each heuristic contributes "
                         "coverage; removing both visibly expands the "
                         "translated code.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
