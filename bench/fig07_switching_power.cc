/** @file Reproduces Figure 7: I-cache switching power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig7SwitchingSaving,
               "~50% for FITS16 and FITS8; ARM8 saves virtually none")
