/** @file Reproduces Figure 3: ARM-to-FITS static mapping coverage. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig3StaticMapping,
               "a 96% average of static one-to-one mapping")
