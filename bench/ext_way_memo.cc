/**
 * @file
 * Extension E9: way-memoization hit rate and internal-energy effect.
 *
 * Ishihara & Fallah-style way memoization: a fetch known to land in the
 * last-accessed line skips the tag search and reads only the memoized
 * data way. The simulator counts those fetches (CacheStats::
 * wayMemoHits) on every run; this bench reports the hit rate per
 * configuration and the internal-energy saving when the power model
 * prices them (TechParams::wayMemo). The underlying runs are the
 * default ones — memoization is a pure power-model re-evaluation.
 */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::extWayMemoTable,
               "extension (no paper counterpart): sequential fetch "
               "runs make most I-fetches memoizable on every kernel")
