/**
 * @file
 * Extension E3: issue-width robustness. The paper simulates a
 * dual-issue core (its Figure 14 caps IPC at 2) although the SA-1100
 * itself is single-issue; this sweep shows the power conclusions do not
 * depend on that choice: the FITS8-vs-ARM16 total I-cache saving and
 * the miss-rate advantage hold at issue widths 1, 2 and 4.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "exp/parallel.hh"
#include "fig_util.hh"
#include "power/cache_power.hh"

using namespace pfits;

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Extension E3: issue-width sweep (suite averages)");
        table.setHeader({"issue width", "ARM16 IPC", "FITS8 IPC",
                         "FITS8 total saving %", "ARM8 total saving %"});
        for (unsigned width : {1u, 2u, 4u}) {
            ExperimentParams params;
            params.core.issueWidth = width;
            harness.applyTo(params);
            Runner runner(params);
            double a16 = 0, f8 = 0, fs = 0, as = 0;
            size_t n = 0;
            for (const BenchResult *b : runner.all()) {
                a16 += b->of(ConfigId::ARM16).run.ipc();
                f8 += b->of(ConfigId::FITS8).run.ipc();
                fs += b->saving(ConfigId::FITS8,
                                CachePowerBreakdown::Component::TOTAL);
                as += b->saving(ConfigId::ARM8,
                                CachePowerBreakdown::Component::TOTAL);
                ++n;
            }
            double dn = static_cast<double>(n);
            table.addRow(std::to_string(width),
                         {a16 / dn, f8 / dn, 100 * fs / dn,
                          100 * as / dn},
                         2);
        }
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nexpected shape: FITS8's saving and its "
                         "ARM16-class IPC persist across issue "
                         "widths.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
