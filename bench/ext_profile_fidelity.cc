/**
 * @file
 * Extension E5: profile fidelity — the paper's Section 3.1 notes FITS
 * "currently use[s] profile information" and calls static-information
 * synthesis future work. This bench quantifies the gap: synthesize each
 * application's ISA from a static-only profile (every instruction
 * weighted once) versus the execution profile, and compare the dynamic
 * mapping rate and the FITS8 total I-cache saving.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "power/cache_power.hh"
#include "sim/machine.hh"

using namespace pfits;

namespace
{

struct Outcome
{
    double dynMap;
    double saving;
};

Outcome
evaluate(const mibench::Workload &w, const char *name, bool dynamic)
{
    // Synthesize from the chosen profile fidelity...
    ProfileInfo synth_profile = profileProgram(w.program, dynamic);
    FitsIsa isa = synthesize(synth_profile, SynthParams{}, name);
    // ...but always *score* against the true execution profile.
    ProfileInfo true_profile = profileProgram(w.program, true);
    FitsProgram fits = translateProgram(w.program, isa, true_profile);
    Outcome out;
    out.dynMap = fits.mapping.dynRate();

    CoreConfig arm16;
    CoreConfig fits8;
    fits8.icache.sizeBytes = 8 * 1024;
    ArmFrontEnd arm(w.program);
    FitsFrontEnd fe(std::move(fits));
    RunResult ra = Machine(arm, arm16).run();
    RunResult rf = Machine(fe, fits8).run();
    CachePowerModel arm_model(arm16.icache, TechParams{});
    CachePowerModel fits_model(fits8.icache, TechParams{});
    out.saving = 1.0 - fits_model.evaluate(rf).totalJ() /
                           arm_model.evaluate(ra).totalJ();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Extension E5: static-only vs dynamic profiling");
        table.setHeader({"benchmark", "dyn map (static prof) %",
                         "dyn map (dyn prof) %",
                         "FITS8 saving (static) %",
                         "FITS8 saving (dyn) %"});
        double s1 = 0, s2 = 0, p1 = 0, p2 = 0;
        size_t n = 0;
        for (const auto &info : mibench::suite()) {
            mibench::Workload w = info.build();
            Outcome stat = evaluate(w, info.name, false);
            Outcome dyn = evaluate(w, info.name, true);
            table.addRow(info.name,
                         {100 * stat.dynMap, 100 * dyn.dynMap,
                          100 * stat.saving, 100 * dyn.saving},
                         1);
            s1 += stat.dynMap;
            s2 += dyn.dynMap;
            p1 += stat.saving;
            p2 += dyn.saving;
            ++n;
        }
        double dn = static_cast<double>(n);
        table.addRow("average", {100 * s1 / dn, 100 * s2 / dn,
                                 100 * p1 / dn, 100 * p2 / dn},
                     1);
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nreading: execution profiles buy a few "
                         "points of dynamic coverage where static "
                         "weights mis-rank hot slots; the power "
                         "conclusion is robust to profile fidelity "
                         "(the paper's future-work question).\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
