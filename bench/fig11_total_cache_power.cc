/** @file Reproduces Figure 11: total I-cache power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig11TotalCacheSaving,
               "FITS8 47% > ARM8 27% > FITS16 18%")
