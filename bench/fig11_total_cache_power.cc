/**
 * @file
 * Reproduces Figure 11: total I-cache power saving.
 *
 * Beyond the shared flag set, this bench accepts `--dvs`: append the
 * voltage/frequency ladder table (suite-total I-cache energy and
 * energy-delay product per operating point, exp/figures.hh). The
 * default table stays byte-identical with or without the flag; the
 * manifest identity gains a "+dvs" suffix so the regression gate
 * tracks the ladder run as its own series.
 */

#include <string_view>
#include <vector>

#include "fig_util.hh"

using namespace pfits;

int
main(int argc, char **argv)
{
    // --dvs is this bench's own flag: strip it before the shared
    // parser, which treats unknown flags as usage errors.
    bool dvs = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::string_view(argv[i]) == "--dvs") {
            dvs = true;
            continue;
        }
        args.push_back(argv[i]);
    }

    std::string tool =
        benchutil::toolName(argc > 0 ? argv[0] : nullptr);
    benchutil::BenchOptions opts = benchutil::parseArgs(
        static_cast<int>(args.size()), args.data(), tool.c_str());
    const char *note = "FITS8 47% > ARM8 27% > FITS16 18%";
    if (dvs)
        tool += "+dvs";

    try {
        benchutil::BenchHarness harness(tool, opts, note);
        Runner runner(harness.makeParams());
        Table table = fig11TotalCacheSaving(runner);
        if (opts.csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        harness.addTable(table);
        if (dvs) {
            Table ladder = fig11DvsTable(runner);
            std::cout << "\n";
            if (opts.csv)
                ladder.printCsv(std::cout);
            else
                ladder.print(std::cout);
            harness.addTable(ladder);
        }
        if (!opts.csv)
            std::cout << "\npaper reports: " << note << "\n";
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
