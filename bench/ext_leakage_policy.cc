/**
 * @file
 * Extension E10: I-cache leakage under per-line power-down policies.
 *
 * The paper's leakage model (and E9's reproduction of it) keeps every
 * line at full leakage for the whole operational period. This bench
 * scores the same runs under the drowsy (Flautner et al.) and
 * gated-Vdd (Powell et al.) per-line policies of power/leakage.hh:
 * three LeakageObservers — off, drowsy, gated — replay one run's fetch
 * stream, and CachePowerModel::leakageEnergyJ prices each activity
 * summary under its policy. The column periphery (sense-amp bias,
 * ~70% of SA-1100-class leakage) cannot be gated per line and bounds
 * every saving; the wake-penalty cycles extend the operational period,
 * which is why gated's deeper sleep does not win proportionally.
 *
 * Everything is deterministic; two invocations print byte-identical
 * reports.
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "fig_util.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "power/cache_power.hh"
#include "power/leakage.hh"
#include "power/tech.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

using namespace pfits;

namespace
{

/** Kernels spanning tight loops (fft) and flat code (dijkstra). */
const char *const kKernels[] = {"jpeg.encode", "fft", "sha",
                                "dijkstra"};

/** One kernel's prebuilt front-ends. */
struct BenchSetup
{
    std::string name;
    std::unique_ptr<ArmFrontEnd> arm;
    std::unique_ptr<FitsFrontEnd> fits;
};

BenchSetup
buildBench(const mibench::BenchInfo &info)
{
    BenchSetup setup;
    setup.name = info.name;
    mibench::Workload w = info.build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
    FitsProgram fits_prog = translateProgram(w.program, isa, profile);
    setup.arm = std::make_unique<ArmFrontEnd>(w.program);
    setup.fits = std::make_unique<FitsFrontEnd>(std::move(fits_prog));
    return setup;
}

/** Leakage params for one policy, all other knobs at defaults. */
LeakageParams
policyParams(LeakagePolicy policy)
{
    LeakageParams p;
    p.policy = policy;
    return p;
}

/** Price one activity summary under @p policy. */
double
priceUj(const CoreConfig &core, LeakagePolicy policy,
        const LeakageActivity &activity)
{
    TechParams tech;
    tech.clockHz = core.clockHz;
    tech.leakage = policyParams(policy);
    CachePowerModel model(core.icache, tech);
    return 1e6 * model.leakageEnergyJ(activity);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());

    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Extension E10: I-cache leakage energy per "
                    "power-down policy (16 KiB I-cache)");
        table.setHeader({"kernel/ISA", "off uJ", "drowsy uJ",
                         "drowsy sv%", "gated uJ", "gated sv%",
                         "wakes", "stall d", "stall g"});

        for (const char *name : kKernels) {
            BenchSetup setup = buildBench(mibench::findBench(name));
            struct Side
            {
                const char *label;
                const FrontEnd *fe;
            } sides[2] = {{"ARM16", setup.arm.get()},
                          {"FITS16", setup.fits.get()}};
            for (const Side &side : sides) {
                // One run, three observers: the policies differ only
                // in how the same idle intervals are priced.
                CoreConfig core;
                LeakageObserver off(core.icache,
                                    policyParams(LeakagePolicy::Off));
                LeakageObserver drowsy(
                    core.icache, policyParams(LeakagePolicy::Drowsy));
                LeakageObserver gated(
                    core.icache, policyParams(LeakagePolicy::Gated));
                ObserverList list;
                list.add(&off);
                list.add(&drowsy);
                list.add(&gated);
                Machine(*side.fe, core).run(nullptr, &list);

                double off_uj = priceUj(core, LeakagePolicy::Off,
                                        off.activity());
                double drowsy_uj = priceUj(core, LeakagePolicy::Drowsy,
                                           drowsy.activity());
                double gated_uj = priceUj(core, LeakagePolicy::Gated,
                                          gated.activity());
                auto sv = [off_uj](double j) {
                    return off_uj ? 100.0 * (1.0 - j / off_uj) : 0.0;
                };
                table.addRow(
                    setup.name + " " + side.label,
                    {off_uj, drowsy_uj, sv(drowsy_uj), gated_uj,
                     sv(gated_uj),
                     static_cast<double>(drowsy.activity().wakes),
                     static_cast<double>(
                         drowsy.activity().wakePenaltyCycles),
                     static_cast<double>(
                         gated.activity().wakePenaltyCycles)},
                    1);
            }
        }

        if (opts.csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        if (!opts.csv) {
            std::cout
                << "\nreading: both policies cut only the cell-array "
                   "term — the shared column periphery leaks for the "
                   "whole run under any policy — so savings cluster "
                   "well below the ~30% cell share. Loop-resident "
                   "kernels (fft, dijkstra) sleep most lines and "
                   "reward gated's deeper cut; wake-heavy jpeg loses "
                   "outright, its penalty cycles stretching the "
                   "operational period faster than sleep pays it "
                   "back.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
