/** @file Reproduces Figure 14: IPC for all four configurations. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig14Ipc,
               "all IPCs satisfactory (dual-issue max 2); an 8 KB FITS "
               "cache achieves roughly the same IPC as a 16 KB ARM "
               "cache")
