/**
 * @file
 * Extension E4: the D-cache as a negative control. FITS rewrites the
 * *instruction* stream; data traffic is essentially unchanged (the few
 * extra accesses come from expansion sequences). Evaluating the same
 * CACTI-lite model on the D-cache shows FITS leaves D-cache power
 * alone — confirming the I-cache savings of Figures 7-11 are a genuine
 * fetch-path effect, not an artefact of the power model.
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"
#include "power/cache_power.hh"

using namespace pfits;

namespace
{

/** Evaluate the model against D-cache activity for one run. */
double
dcacheEnergy(const RunResult &run, const CacheConfig &dcache)
{
    TechParams tech;
    CachePowerModel model(dcache, tech);
    // Build a pseudo-run whose "fetch" counters carry the D-side
    // activity (32-bit data bus, activity-factor switching).
    RunResult data = run;
    data.icache = run.dcache;
    data.fetchBitsTotal = run.dcache.accesses() * 32;
    data.fetchToggleBits = data.fetchBitsTotal / 2;
    data.icacheRefillWords =
        run.dcache.misses() * (dcache.lineBytes / 4);
    return model.evaluate(data).totalJ();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Runner runner(harness.makeParams());
        CacheConfig dcache = runner.coreConfig(ConfigId::ARM16).dcache;

        Table table("Extension E4: D-cache energy (negative control)");
        table.setHeader({"benchmark", "ARM16 uJ", "FITS16 uJ",
                         "delta %"});
        double sum = 0;
        size_t n = 0;
        for (const BenchResult *bench : runner.all()) {
            double arm =
                dcacheEnergy(bench->of(ConfigId::ARM16).run, dcache);
            double fits =
                dcacheEnergy(bench->of(ConfigId::FITS16).run, dcache);
            double delta = 100.0 * (fits / arm - 1.0);
            table.addRow(bench->name,
                         {arm * 1e6, fits * 1e6, delta}, 2);
            sum += delta;
            ++n;
        }
        table.addRow("average", {0, 0, sum / static_cast<double>(n)},
                     2);
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            std::cout << "\nreading: FITS changes D-cache energy by "
                         "only a few percent (expansion spills), so "
                         "the I-cache savings are a real fetch-path "
                         "effect.\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
