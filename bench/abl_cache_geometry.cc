/**
 * @file
 * Ablation A3 (DESIGN.md §6): sweep the I-cache geometry to show the
 * paper's conclusions are not an artefact of the SA-1100's 32-way,
 * 32-byte-line organization: the FITS8-vs-ARM16 total power saving and
 * the miss-rate advantage persist across associativities and line
 * sizes.
 */

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "exp/experiment.hh"
#include "fig_util.hh"
#include "power/cache_power.hh"

using namespace pfits;

namespace
{

const char *kBenches[] = {"sha", "jpeg.encode", "crc32", "fft"};

} // namespace

int
main(int argc, char **argv)
{
    const std::string tool = benchutil::toolName(argv[0]);
    benchutil::BenchOptions opts =
        benchutil::parseArgs(argc, argv, tool.c_str());
    try {
        benchutil::BenchHarness harness(tool, opts);
        Table table("Ablation A3: cache geometry sweep (suite subset)");
        table.setHeader({"assoc/line", "ARM16 int pJ/acc",
                         "FITS8 total saving %", "ARM8 mpmi",
                         "FITS8 mpmi"});
        std::vector<std::string> skipped;
        // The sweep includes deliberately impossible points (a 4096-way
        // cache that cannot fit one set, a non-power-of-two line):
        // CacheConfig::validateError() skips them as rows instead of
        // the first bad geometry aborting the whole sweep.
        for (uint32_t assoc : {2u, 8u, 32u, 4096u}) {
            for (uint32_t line : {16u, 32u, 48u, 64u}) {
                ExperimentParams params;
                params.core.icache.assoc = assoc;
                params.core.icache.lineBytes = line;
                harness.applyTo(params);

                char label[32];
                std::snprintf(label, sizeof(label), "%uw/%uB", assoc,
                              line);
                // The 8 KiB ARM8/FITS8 caches are the tightest
                // geometry a sweep point must satisfy.
                CacheConfig small = params.core.icache;
                small.sizeBytes = params.smallCacheBytes;
                std::string err = params.core.icache.validateError();
                if (err.empty())
                    err = small.validateError();
                if (!err.empty()) {
                    table.addRow(
                        {label, "skipped", "-", "-", "-"});
                    skipped.push_back(std::string(label) + ": " + err);
                    continue;
                }
                Runner runner(params);

                CacheConfig arm16 =
                    runner.coreConfig(ConfigId::ARM16).icache;
                CachePowerModel model(arm16, params.tech);

                double saving = 0, arm8_mpmi = 0, fits8_mpmi = 0;
                for (const char *name : kBenches) {
                    const BenchResult &b = runner.get(name);
                    saving += b.saving(
                        ConfigId::FITS8,
                        CachePowerBreakdown::Component::TOTAL);
                    arm8_mpmi += b.of(ConfigId::ARM8)
                                     .run.icache.missesPerMillion();
                    fits8_mpmi += b.of(ConfigId::FITS8)
                                      .run.icache.missesPerMillion();
                }
                double n = static_cast<double>(std::size(kBenches));
                table.addRow(label,
                             {model.internalEnergyPerAccess() * 1e12,
                              100 * saving / n, arm8_mpmi / n,
                              fits8_mpmi / n},
                             1);
            }
        }
        if (opts.csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
            if (!skipped.empty()) {
                std::cout << "\nskipped design points:\n";
                for (const std::string &s : skipped)
                    std::cout << "  " << s << "\n";
            }
            std::cout << "\nexpected shape: FITS8's total-power "
                         "advantage holds across geometries; internal "
                         "energy grows with associativity x line "
                         "(column count)\n";
        }
        harness.addTable(table);
        return harness.finish();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
