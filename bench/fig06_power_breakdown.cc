/** @file Reproduces Figure 6: I-cache power breakdown per config. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig6PowerBreakdown,
               "internal > 50% everywhere; switching share falls and "
               "internal share rises with cache size; FITS shifts share "
               "from switching to internal at equal size")
