/** @file Reproduces Figure 8: I-cache internal power saving. */
#include "fig_util.hh"
PFITS_FIG_MAIN(pfits::fig8InternalSaving,
               "nontrivial savings for the half-sized FITS8/ARM8 "
               "(~43%); FITS16 ~0%")
