/** @file Unit and property tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "power/cache_power.hh"

namespace pfits
{
namespace
{

CacheConfig
smallCache(ReplPolicy policy = ReplPolicy::LRU)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 256;
    cfg.assoc = 2;
    cfg.lineBytes = 16;
    cfg.policy = policy;
    return cfg;
}

TEST(CacheConfig, GeometryAndValidation)
{
    CacheConfig cfg = smallCache();
    EXPECT_EQ(cfg.numLines(), 16u);
    EXPECT_EQ(cfg.numSets(), 8u);
    cfg.sizeBytes = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallCache();
    cfg.lineBytes = 2;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = smallCache();
    cfg.assoc = 64; // bigger than line count
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(CacheConfig, ValidateErrorDescribesWithoutAborting)
{
    // Sweeps probe design points with validateError(): "" when the
    // geometry is fine, a descriptive message (naming the cache and
    // the constraint) when it is not — and never an abort.
    CacheConfig cfg = smallCache();
    EXPECT_EQ(cfg.validateError(), "");

    cfg.sizeBytes = 0;
    EXPECT_NE(cfg.validateError().find("non-zero"), std::string::npos);

    cfg = smallCache();
    cfg.lineBytes = 48;
    EXPECT_NE(cfg.validateError().find("powers of two"),
              std::string::npos);

    cfg = smallCache();
    cfg.lineBytes = 2;
    EXPECT_NE(cfg.validateError().find("below 4 bytes"),
              std::string::npos);

    cfg = smallCache();
    cfg.assoc = 64;
    std::string err = cfg.validateError();
    EXPECT_NE(err.find("too small"), std::string::npos);
    EXPECT_NE(err.find(cfg.name), std::string::npos);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x100c, false).hit); // same line
    EXPECT_FALSE(cache.access(0x1010, false).hit); // next line
    EXPECT_EQ(cache.stats().reads, 4u);
    EXPECT_EQ(cache.stats().readMisses, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache cache(smallCache());
    // Three lines mapping to set 0: addresses differing in tag bits.
    uint32_t a = 0x0000, b = 0x0080, c = 0x0100;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false); // a most recent
    cache.access(c, false); // evicts b
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, FifoIgnoresRecency)
{
    Cache cache(smallCache(ReplPolicy::FIFO));
    uint32_t a = 0x0000, b = 0x0080, c = 0x0100;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false); // does not refresh a under FIFO
    cache.access(c, false); // evicts a (oldest fill)
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, WritebackTracksDirtyVictims)
{
    Cache cache(smallCache());
    cache.access(0x0000, true); // dirty
    cache.access(0x0080, false);
    CacheAccessResult res = cache.access(0x0100, false); // evicts dirty
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0x0000u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughDoesNotAllocateOnWriteMiss)
{
    CacheConfig cfg = smallCache();
    cfg.writeBack = false;
    Cache cache(cfg);
    EXPECT_FALSE(cache.access(0x2000, true).hit);
    EXPECT_FALSE(cache.contains(0x2000));
    // Reads still allocate.
    cache.access(0x2000, false);
    EXPECT_TRUE(cache.contains(0x2000));
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache(smallCache());
    cache.access(0x0, false);
    cache.access(0x100, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x100));
}

TEST(Cache, StatsRegistration)
{
    Cache cache(smallCache());
    cache.access(0x0, false);
    cache.access(0x0, false);
    StatGroup group("c");
    cache.addStats(group);
    EXPECT_DOUBLE_EQ(group.lookup("reads"), 2.0);
    EXPECT_DOUBLE_EQ(group.lookup("misses"), 1.0);
    EXPECT_DOUBLE_EQ(group.lookup("miss_rate"), 0.5);
    EXPECT_DOUBLE_EQ(group.lookup("mpmi"), 500000.0);
}

/** Property: a fully-associative cache with LRU over a working set no
 *  larger than the cache never misses after the cold pass. */
TEST(Cache, LruFitsWorkingSetProperty)
{
    CacheConfig cfg;
    cfg.sizeBytes = 512;
    cfg.assoc = 16; // fully associative (32-byte lines, 16 lines)
    cfg.lineBytes = 32;
    Cache cache(cfg);
    for (int pass = 0; pass < 4; ++pass)
        for (uint32_t line = 0; line < 16; ++line)
            cache.access(0x4000 + line * 32, false);
    EXPECT_EQ(cache.stats().misses(), 16u);
}

/** Property: a bigger cache never has more misses than a smaller one
 *  with the same line size under LRU (inclusion property across sizes
 *  holds for fully-associative LRU). */
TEST(Cache, LruInclusionAcrossSizes)
{
    CacheConfig small;
    small.sizeBytes = 1024;
    small.assoc = 32;
    small.lineBytes = 32;
    CacheConfig big = small;
    big.sizeBytes = 2048;
    big.assoc = 64;

    Cache small_cache(small), big_cache(big);
    Rng rng(0x10c41ull);
    for (int i = 0; i < 50000; ++i) {
        uint32_t addr = (rng.below(128)) * 32; // 4 KiB footprint
        small_cache.access(addr, false);
        big_cache.access(addr, false);
    }
    EXPECT_LE(big_cache.stats().misses(),
              small_cache.stats().misses());
}

/** Property: miss count is invariant to request order permutations
 *  within a single-set round-robin stream of exactly `assoc` lines. */
TEST(Cache, RoundRobinSteadyState)
{
    CacheConfig cfg = smallCache(ReplPolicy::ROUND_ROBIN);
    Cache cache(cfg);
    // Exactly `assoc` lines in one set: steady state must not miss.
    for (int pass = 0; pass < 3; ++pass) {
        cache.access(0x0000, false);
        cache.access(0x0080, false);
    }
    EXPECT_EQ(cache.stats().misses(), 2u);
}

/** Random replacement must still bound misses by the compulsory+capacity
 *  behaviour: hits happen when the set has spare ways. */
TEST(Cache, RandomReplacementStillCaches)
{
    Cache cache(smallCache(ReplPolicy::RANDOM));
    for (int pass = 0; pass < 10; ++pass)
        cache.access(0x0, false);
    EXPECT_EQ(cache.stats().misses(), 1u);
}

TEST(Cache, PolicyNames)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "lru");
    EXPECT_STREQ(replPolicyName(ReplPolicy::ROUND_ROBIN),
                 "round-robin");
}

TEST(CacheConfig, MisconfigurationIsFatalNotUB)
{
    // Every degenerate geometry must be rejected by validate() before
    // any division or table sizing can go wrong.
    CacheConfig cfg = smallCache();
    cfg.sizeBytes = 3000; // non-power-of-two size
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallCache();
    cfg.assoc = 0; // zero associativity would divide by zero
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallCache();
    cfg.sizeBytes = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallCache();
    cfg.lineBytes = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallCache();
    cfg.lineBytes = 2; // below the 4-byte minimum
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = smallCache();
    cfg.assoc = 3; // non-power-of-two associativity
    EXPECT_THROW(cfg.validate(), FatalError);

    // The Cache constructor itself must enforce the same contract.
    cfg = smallCache();
    cfg.assoc = 0;
    EXPECT_THROW(Cache{cfg}, FatalError);
}

TEST(Cache, InjectedFaultEscapesWithoutParity)
{
    Cache cache(smallCache());
    cache.access(0x1000, false);
    Rng rng(42);
    ASSERT_TRUE(cache.injectBitFlip(rng));
    EXPECT_EQ(cache.stats().faultsInjected, 1u);

    CacheAccessResult res = cache.access(0x1000, false);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.corruptDelivered);
    EXPECT_FALSE(res.parityError);
    EXPECT_EQ(cache.stats().corruptDeliveries, 1u);

    // The corruption is consumed once; the line then reads clean.
    res = cache.access(0x1000, false);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.corruptDelivered);
}

TEST(Cache, ParityDetectsInjectedFaultAndRefetches)
{
    CacheConfig cfg = smallCache();
    cfg.parity = true;
    Cache cache(cfg);
    cache.access(0x1000, false);
    Rng rng(42);
    ASSERT_TRUE(cache.injectBitFlip(rng));

    CacheAccessResult res = cache.access(0x1000, false);
    EXPECT_TRUE(res.parityError);
    EXPECT_FALSE(res.hit); // detected flips force a refetch (miss)
    EXPECT_FALSE(res.corruptDelivered);
    EXPECT_EQ(cache.stats().parityDetections, 1u);
    EXPECT_EQ(cache.stats().corruptDeliveries, 0u);

    // The refetched line is clean again.
    res = cache.access(0x1000, false);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.parityError);
}

TEST(CacheConfig, AssociativityCapAndWideGeometryProduct)
{
    // The way-hint slots pack a way index into 16 bits, so the
    // validator rejects anything above kMaxAssoc instead of letting
    // the constructor build an array the fast path cannot address.
    CacheConfig cfg{"wide", 1u << 31, CacheConfig::kMaxAssoc * 2, 16,
                    ReplPolicy::LRU, true};
    std::string err = cfg.validateError();
    EXPECT_NE(err.find("associativity"), std::string::npos);
    EXPECT_THROW(cfg.validate(), FatalError);

    // lineBytes * assoc == 2^32 wraps a 32-bit product to zero, which
    // once slipped past the size check and handed the constructor a
    // zero-set geometry. The 64-bit comparison must reject it.
    CacheConfig wrap{"wrap", 1u << 31, CacheConfig::kMaxAssoc,
                     1u << 16, ReplPolicy::LRU, true};
    err = wrap.validateError();
    EXPECT_NE(err.find("too small"), std::string::npos);
    EXPECT_THROW(wrap.validate(), FatalError);

    // Legal L2-scale geometries still pass and agree with the
    // constructor about their shape.
    CacheConfig l2{"l2", 4 * 1024 * 1024, 16, 64, ReplPolicy::LRU,
                   true};
    EXPECT_EQ(l2.validateError(), "");
    EXPECT_EQ(l2.numLines(), 65536u);
    EXPECT_EQ(l2.numSets(), 4096u);
    Cache built(l2);
    EXPECT_EQ(built.residentLines(), 0u);

    // The boundary itself is legal: kMaxAssoc ways of small lines in
    // a size that holds them.
    CacheConfig edge{"edge", 1u << 20, CacheConfig::kMaxAssoc, 16,
                     ReplPolicy::LRU, true};
    EXPECT_EQ(edge.validateError(), "");
}

TEST(CacheConfig, PowerModelColumnsComputedIn64Bit)
{
    // Companion to the validateError widening above: the power model's
    // column count for the same wide-geometry family (assoc * lineBytes
    // * 8 == 2^32) used to wrap in uint32 arithmetic, zeroing the
    // wordline/sense and periphery-leakage terms.
    CacheConfig wide{"wide", 1u << 29, 1u << 12, 1u << 17,
                     ReplPolicy::LRU, true};
    EXPECT_EQ(wide.validateError(), "");
    CachePowerModel model(wide, TechParams{});
    EXPECT_EQ(model.cols(), 1ull << 32);
    EXPECT_GT(model.internalEnergyPerAccess(), 0.0);
    EXPECT_GT(model.peripheryLeakagePower(), 0.0);
}

TEST(Cache, WayMemoCountsSameLineRepeats)
{
    Cache cache(smallCache());
    // The cold miss arms the hint but is not itself a memo hit.
    cache.access(0x100, false);
    EXPECT_EQ(cache.stats().wayMemoHits, 0u);
    // Three more accesses in the same 16-byte line: all memo hits.
    cache.access(0x104, false);
    cache.access(0x108, true);
    cache.access(0x10c, false);
    EXPECT_EQ(cache.stats().wayMemoHits, 3u);
    // A different line breaks the run, and an A-B-A alternation never
    // memoizes: each access follows one to the other line.
    cache.access(0x200, false);
    cache.access(0x100, false);
    cache.access(0x200, false);
    EXPECT_EQ(cache.stats().wayMemoHits, 3u);
    EXPECT_LE(cache.stats().wayMemoHits, cache.stats().accesses());
}

TEST(Cache, WayMemoIdenticalAcrossAccessAndAccessFast)
{
    // The fast path's hinted hits must count memo hits exactly like
    // the full scan (the backends compare this field differentially).
    Cache full(smallCache());
    Cache fast(smallCache());
    const uint32_t addrs[] = {0x100, 0x104, 0x200, 0x204,
                              0x100, 0x108, 0x10c};
    for (uint32_t addr : addrs) {
        full.access(addr, false);
        fast.accessFast(addr, false);
    }
    EXPECT_EQ(full.stats().wayMemoHits, 4u);
    EXPECT_EQ(fast.stats().wayMemoHits, full.stats().wayMemoHits);
}

TEST(Cache, ApplyRepeatsMemoAccounting)
{
    Cache cache(smallCache());
    cache.access(0x100, false); // arm the hint
    size_t idx = cache.lastHitIdx();

    // Three-arg form: every batched repeat is a memo hit.
    cache.applyRepeatsAt(idx, 4, 1);
    EXPECT_EQ(cache.stats().wayMemoHits, 5u);
    EXPECT_EQ(cache.stats().reads, 5u);
    EXPECT_EQ(cache.stats().writes, 1u);

    // Four-arg form: an interleaved streak's re-entry touch follows an
    // access to the *other* line, so the caller excludes it.
    cache.applyRepeatsAt(idx, 3, 0, 2);
    EXPECT_EQ(cache.stats().wayMemoHits, 7u);
    EXPECT_LE(cache.stats().wayMemoHits, cache.stats().accesses());
}

TEST(Cache, WayMemoHintClearedByDisturbances)
{
    // An injected fault drops the hint: the next access in the same
    // line takes the full path and is not a memo hit.
    Cache cache(smallCache());
    cache.access(0x100, false);
    Rng rng(1);
    EXPECT_TRUE(cache.injectBitFlip(rng));
    cache.access(0x104, false); // corrupt delivery, hint stays down
    EXPECT_EQ(cache.stats().wayMemoHits, 0u);
    cache.access(0x108, false); // follows a kNoLine hint: no memo
    EXPECT_EQ(cache.stats().wayMemoHits, 0u);
    cache.access(0x10c, false); // hint re-armed: memoizes again
    EXPECT_EQ(cache.stats().wayMemoHits, 1u);

    // A write-around miss leaves nothing resident to memoize against.
    CacheConfig wt = smallCache();
    wt.writeBack = false;
    Cache around(wt);
    around.access(0x100, false);
    around.access(0x304, true); // write miss, no allocation
    around.access(0x100, false); // hint was kNoLine: no memo
    EXPECT_EQ(around.stats().wayMemoHits, 0u);
}

TEST(Cache, InjectIntoEmptyCacheDoesNothing)
{
    Cache cache(smallCache());
    Rng rng(7);
    EXPECT_FALSE(cache.injectBitFlip(rng));
    EXPECT_EQ(cache.stats().faultsInjected, 0u);
    EXPECT_EQ(cache.residentLines(), 0u);
    cache.access(0x0, false);
    EXPECT_EQ(cache.residentLines(), 1u);
}

} // namespace
} // namespace pfits
