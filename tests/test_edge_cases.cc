/** @file Edge-case and failure-injection tests across the toolchain:
 *  synthesis resource exhaustion, unusual translation shapes, and
 *  figure-table consistency against raw results. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "assembler/assembler.hh"
#include "assembler/builder.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "exp/figures.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "sim/executor.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"
#include "verify/golden.hh"
#include "verify/timing.hh"

namespace pfits
{
namespace
{

RunResult
runArmAndFits(const Program &prog, const SynthParams &sp,
              RunResult *fits_out)
{
    ProfileInfo profile = profileProgram(prog);
    FitsIsa isa = synthesize(profile, sp, prog.name);
    FitsProgram fits = translateProgram(prog, isa, profile);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fe(std::move(fits));
    RunResult ra = Machine(arm, CoreConfig{}).run();
    *fits_out = Machine(fe, CoreConfig{}).run();
    return ra;
}

TEST(SynthEdge, RegisterListDictionaryOverflowIsFatal)
{
    ProgramBuilder b("lists");
    // 17 distinct register lists overflow the 16-entry dictionary.
    for (unsigned i = 1; i <= 17; ++i) {
        MicroOp push;
        push.op = Op::STM;
        push.rn = SP;
        push.regList = static_cast<uint16_t>(i);
        push.ldmIsPop = false;
        b.emit(push);
    }
    b.exit();
    Program prog = b.finish();
    ProfileInfo profile = profileProgram(prog, false);
    EXPECT_THROW(synthesize(profile, SynthParams{}, "lists"),
                 FatalError);
    // A larger dictionary resolves it.
    SynthParams roomy;
    roomy.listDictCapacity = 32;
    EXPECT_NO_THROW(synthesize(profile, roomy, "lists"));
}

TEST(SynthEdge, ConditionalMemoryAndReturn)
{
    ProgramBuilder b("condmem");
    Label fn = b.label();
    Label start = b.label();
    b.b(start);
    b.bind(fn);
    b.cmpi(R0, 5);
    b.ret(Cond::GT);         // conditional return (saturates at 6)
    b.addi(R0, R0, 1);
    b.ret();
    b.bind(start);
    b.zeros("buf", 64);
    b.lea(R1, "buf");
    b.movi(R0, 0);
    Label loop = b.here();
    b.bl(fn);
    b.cmpi(R0, 3);
    b.str(R0, R1, 4, Cond::EQ);  // conditional store
    b.ldr(R2, R1, 4, Cond::GE);  // conditional load
    b.cmpi(R0, 6);
    b.b(loop, Cond::LT);
    b.add(R0, R0, R2);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(SynthEdge, NegativeRegisterOffsetsSurvive)
{
    ProgramBuilder b("negoff");
    b.words("tab", {10, 20, 30, 40, 50});
    b.lea(R1, "tab");
    b.addi(R1, R1, 16); // point at tab[4]
    b.movi(R2, 2);
    // address = r1 - r2*... : uARM negative register offset
    MicroOp ldr;
    ldr.op = Op::LDR;
    ldr.rd = R0;
    ldr.rn = R1;
    ldr.rm = R2;
    ldr.memKind = MemOffsetKind::REG_SHIFT_IMM;
    ldr.shiftType = ShiftType::LSL;
    ldr.shiftAmount = 2;
    ldr.memAdd = false;
    b.emit(ldr); // loads tab[2] == 30
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted.at(0), 30u);
    EXPECT_EQ(fits_rr.io.emitted.at(0), 30u);
}

TEST(SynthEdge, ShiftByRegisterForms)
{
    ProgramBuilder b("shiftreg");
    b.movi(R0, 0x1234);
    b.movi(R1, 4);
    b.lslr(R2, R0, R1);             // mov-class shift by register
    b.aluShiftReg(AluOp::ADD, R3, R2, R0, ShiftType::LSR, R1);
    b.eor(R0, R2, R3);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(SynthEdge, LongMultipliesViaBakedPairs)
{
    ProgramBuilder b("longmul");
    // Use >8 registers so 4-bit fields force destination baking.
    for (uint8_t reg = R0; reg <= R9; ++reg)
        b.movi(reg, 0x1000u + reg);
    b.umull(R4, R5, R6, R7);
    b.smull(R8, R9, R6, R7);
    b.eor(R0, R4, R5);
    b.eor(R0, R0, R8);
    b.eor(R0, R0, R9);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(FigureConsistency, TablesAgreeWithRawResults)
{
    Runner runner;
    const BenchResult &crc = runner.get("crc32");

    Table t3 = fig3StaticMapping(runner);
    // Find crc32's row and compare against the raw mapping stat.
    bool found = false;
    for (const auto &row : t3.body()) {
        if (row[0] == "crc32") {
            EXPECT_NEAR(std::stod(row[1]),
                        100.0 * crc.mapping.staticRate(), 0.05);
            found = true;
        }
    }
    EXPECT_TRUE(found);

    Table t13 = fig13MissRate(runner);
    for (const auto &row : t13.body()) {
        if (row[0] == "crc32") {
            EXPECT_NEAR(
                std::stod(row[1]),
                crc.of(ConfigId::ARM16).run.icache.missesPerMillion(),
                0.1);
        }
    }
}

TEST(FigureConsistency, RunnerMemoizes)
{
    Runner runner;
    const BenchResult &a = runner.get("gsm");
    const BenchResult &b = runner.get("gsm");
    EXPECT_EQ(&a, &b); // same object, not a re-simulation
}

TEST(FigureConsistency, SavingsAreEnergyRatios)
{
    Runner runner;
    const BenchResult &bench = runner.get("qsort");
    using C = CachePowerBreakdown::Component;
    double manual = 1.0 - bench.of(ConfigId::FITS8).icache.totalJ() /
                              bench.of(ConfigId::ARM16).icache.totalJ();
    EXPECT_DOUBLE_EQ(bench.saving(ConfigId::FITS8, C::TOTAL), manual);
}

// --- directed regressions for the verification-harness bugfixes ----------

/** Records every IssueEvent of one run. */
struct IssueCollector final : public SimObserver
{
    std::vector<IssueEvent> issues;
    void onIssue(const IssueEvent &e) override { issues.push_back(e); }

    uint64_t
    cycleOf(uint64_t index) const
    {
        for (const IssueEvent &e : issues)
            if (e.index == index)
                return e.cycle;
        ADD_FAILURE() << "no issue event for index " << index;
        return 0;
    }
};

TEST(ScoreboardRegression, MulsDeliversFlagsWithResult)
{
    // MULS has extraLatency 2, so its result — and, for an S-form, the
    // NZCV flags — is ready at issue + 3. The scoreboard used to mark
    // the flags ready at issue + 1, letting a dependent conditional
    // issue two cycles early.
    ProgramBuilder b("mulsflags");
    b.movi(R1, 7);
    b.movi(R2, 9);
    size_t muls_index = b.size();
    b.mul(R3, R1, R2, Cond::AL, /*s=*/true);
    size_t cond_index = b.size();
    b.addi(R4, R4, 1, Cond::NE); // consumes only the MULS flags
    b.exit();
    Program prog = b.finish();

    ArmFrontEnd arm(prog);
    CoreConfig core;
    Machine machine(arm, core);
    IssueCollector collector;
    TimingInvariantChecker checker(core);
    ObserverList observers;
    observers.add(&collector);
    observers.add(&checker);
    RunResult rr = machine.run(nullptr, &observers);

    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_EQ(rr.finalState.regs[R3], 63u);
    EXPECT_EQ(rr.finalState.regs[R4], 1u); // 63 != 0 → NE executes
    EXPECT_TRUE(checker.ok()) << checker.summary();

    uint64_t muls_cycle = collector.cycleOf(muls_index);
    uint64_t cond_cycle = collector.cycleOf(cond_index);
    EXPECT_GE(cond_cycle, muls_cycle + 3)
        << "conditional consumed NZCV before the MULS produced it";
}

TEST(ExecutorRegression, StmBaseInListStoresOriginalBase)
{
    // STMDB with the base register in the register list must store the
    // *original* base value and suppress writeback. The executor used
    // to write the decremented base back unconditionally.
    ProgramBuilder b("stmbase");
    b.zeros("buf", 64);
    b.lea(R1, "buf");
    b.addi(R1, R1, 32);
    b.movi(R0, 0x11111111u);
    b.movi(R2, 0x22222222u);
    MicroOp stm;
    stm.op = Op::STM;
    stm.rn = R1;
    stm.regList = regMask({R0, R1, R2});
    stm.ldmIsPop = false;
    setQuiet(true); // the builder warns about base-in-list STM
    b.emit(stm);
    setQuiet(false);
    b.exit();
    Program prog = b.finish();
    uint32_t base = prog.symbol("buf") + 32;

    ArmFrontEnd arm(prog);
    Machine machine(arm, CoreConfig{});
    RunResult rr = machine.run();
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);

    // Decrement-before block {r0, r1, r2}: ascending at base-12..base-4.
    EXPECT_EQ(machine.mem().read32(base - 12), 0x11111111u);
    EXPECT_EQ(machine.mem().read32(base - 8), base); // original base
    EXPECT_EQ(machine.mem().read32(base - 4), 0x22222222u);
    EXPECT_EQ(rr.finalState.regs[R1], base); // writeback suppressed

    // The golden model implements the same contract independently.
    GoldenInterpreter golden(arm);
    GoldenResult g = golden.run();
    ASSERT_EQ(g.outcome, RunOutcome::Completed);
    EXPECT_EQ(g.finalState.regs[R1], base);
    EXPECT_EQ(golden.mem().read32(base - 8), base);
}

TEST(ExecutorRegression, LdmBaseInListLoadedValueWins)
{
    ProgramBuilder b("ldmbase");
    b.words("buf", {10, 20, 30});
    b.lea(R1, "buf");
    MicroOp ldm;
    ldm.op = Op::LDM;
    ldm.rn = R1;
    ldm.regList = regMask({R0, R1, R2});
    ldm.ldmIsPop = false;
    b.emit(ldm);
    b.exit();
    Program prog = b.finish();

    ArmFrontEnd arm(prog);
    RunResult rr = Machine(arm, CoreConfig{}).run();
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_EQ(rr.finalState.regs[R0], 10u);
    EXPECT_EQ(rr.finalState.regs[R1], 20u); // loaded value, not base+12
    EXPECT_EQ(rr.finalState.regs[R2], 30u);

    GoldenResult g = GoldenInterpreter(arm).run();
    ASSERT_EQ(g.outcome, RunOutcome::Completed);
    EXPECT_EQ(g.finalState.regs[R1], 20u);
}

/**
 * Run @p prog under both backends on @p core and require the complete
 * observable surface to match — architectural state, every counter,
 * cache statistics, outcome and trap text. Directed regressions for
 * divergences the differential harness caught while the fast backend
 * grew its batched dispatch paths.
 */
void
expectFastMatchesInterp(const Program &prog, CoreConfig core,
                        const FaultParams *faults = nullptr)
{
    RunResult res[2];
    for (int i = 0; i < 2; ++i) {
        core.backend = i == 0 ? SimBackend::Interp : SimBackend::Fast;
        ArmFrontEnd fe(prog);
        Machine m(fe, core);
        if (faults != nullptr) {
            FaultPlan plan(*faults);
            res[i] = m.run(&plan);
        } else {
            res[i] = m.run();
        }
    }
    const RunResult &a = res[0], &b = res[1];
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.trapReason, b.trapReason);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.annulled, b.annulled);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.dmemAccesses, b.dmemAccesses);
    EXPECT_EQ(a.fetchToggleBits, b.fetchToggleBits);
    EXPECT_EQ(a.fetchBitsTotal, b.fetchBitsTotal);
    EXPECT_EQ(a.icacheRefillWords, b.icacheRefillWords);
    EXPECT_EQ(a.icache.reads, b.icache.reads);
    EXPECT_EQ(a.icache.readMisses, b.icache.readMisses);
    EXPECT_EQ(a.icache.faultsInjected, b.icache.faultsInjected);
    EXPECT_EQ(a.icache.parityDetections, b.icache.parityDetections);
    EXPECT_EQ(a.icache.corruptDeliveries, b.icache.corruptDeliveries);
    EXPECT_EQ(a.dcache.reads, b.dcache.reads);
    EXPECT_EQ(a.dcache.writes, b.dcache.writes);
    EXPECT_EQ(a.dcache.readMisses, b.dcache.readMisses);
    EXPECT_EQ(a.dcache.writeMisses, b.dcache.writeMisses);
    EXPECT_EQ(a.dcache.writebacks, b.dcache.writebacks);
    for (int r = 0; r < 16; ++r)
        EXPECT_EQ(a.finalState.regs[r], b.finalState.regs[r]) << r;
    EXPECT_EQ(a.finalState.halted, b.finalState.halted);
    EXPECT_EQ(a.io.console, b.io.console);
    EXPECT_EQ(a.io.emitted, b.io.emitted);
}

TEST(FastBackendRegression, TrapInsideStraightLineRunMatchesInterp)
{
    // A misaligned load buried in the middle of a straight-line block:
    // memory ops do not terminate a dispatch run, so the trap unwinds
    // out of a batch whose counters were accounted ahead of time. The
    // reconciliation must charge the trapping op's fetch but not its
    // instruction, and ops behind it fully — exactly as the
    // interpreter does.
    ProgramBuilder b("midruntrap");
    b.movi(R1, 0x101); // non-word-aligned address
    for (int i = 0; i < 6; ++i)
        b.addi(R2, R2, 1);
    b.ldr(R0, R1, 0); // traps mid-run
    for (int i = 0; i < 6; ++i)
        b.addi(R3, R3, 1); // never reached
    b.exit();
    expectFastMatchesInterp(b.finish(), CoreConfig{});
}

TEST(FastBackendRegression, WatchdogExpiryMidRunMatchesInterp)
{
    // The instruction cap lands in the middle of a straight-line
    // block: the batch span must clamp so the watchdog expires at
    // exactly the same dynamic instruction as the interpreter's
    // per-op check, with identical partial statistics.
    ProgramBuilder b("midrunwatchdog");
    for (int i = 0; i < 40; ++i)
        b.addi(R2, R2, 1);
    b.exit();
    Program prog = b.finish();
    CoreConfig core;
    core.maxInstructions = 17;
    expectFastMatchesInterp(prog, core);
}

TEST(FastBackendRegression, ParityFaultAccountingMatchesInterp)
{
    // I-cache fault injection with parity: every injection, detection
    // and refetch must land on the same dynamic instruction in both
    // backends (the fast loop once ran its fault accounting behind a
    // different null-plan guard than the interpreter's
    // FaultAccountingObserver route).
    ProgramBuilder b("parityfault");
    b.movi(R0, 200);
    Label loop = b.here();
    for (int i = 0; i < 8; ++i)
        b.addi(R2, R2, 3);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    Program prog = b.finish();

    CoreConfig core;
    core.icache.parity = true;
    FaultParams fp;
    fp.seed = 0xc0ffee;
    fp.icacheMeanInterval = 40;
    expectFastMatchesInterp(prog, core, &fp);

    core.icache.parity = false;
    fp.memoryMeanInterval = 90;
    expectFastMatchesInterp(prog, core, &fp);
}

TEST(FastBackendRegression, UnpackedSubWordStreamCountsEveryFetch)
{
    // A 16-bit FITS stream WITHOUT the packed-fetch buffer: every
    // fetch touches the I-cache even when consecutive 2-byte
    // encodings share a 32-bit word. The fast loop's batched
    // precompute once counted word transitions unconditionally and so
    // undercounted reads on exactly this configuration — and only on
    // the observer-free path, which is why it must run bare here.
    ProgramBuilder b("unpackedfits");
    b.movi(R0, 50);
    Label loop = b.here();
    for (int i = 0; i < 12; ++i)
        b.addi(R2, R2, 1);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    Program prog = b.finish();

    ProfileInfo profile = profileProgram(prog);
    FitsIsa isa = synthesize(profile, SynthParams{}, prog.name);
    FitsProgram fits = translateProgram(prog, isa, profile);

    RunResult res[2];
    for (int i = 0; i < 2; ++i) {
        CoreConfig core; // packedFetch stays false
        core.backend = i == 0 ? SimBackend::Interp : SimBackend::Fast;
        FitsFrontEnd fe(fits);
        res[i] = Machine(fe, core).run();
        ASSERT_EQ(res[i].outcome, RunOutcome::Completed);
    }
    EXPECT_EQ(res[0].icache.reads, res[1].icache.reads);
    EXPECT_EQ(res[0].icache.readMisses, res[1].icache.readMisses);
    EXPECT_EQ(res[0].fetchToggleBits, res[1].fetchToggleBits);
    EXPECT_EQ(res[0].fetchBitsTotal, res[1].fetchBitsTotal);
    EXPECT_EQ(res[0].cycles, res[1].cycles);
    EXPECT_EQ(res[0].instructions, res[1].instructions);
    // Without the buffer the read count is the fetch count: far more
    // reads than 32-bit words in the stream.
    EXPECT_EQ(res[0].icache.reads, res[0].instructions);
}

TEST(UnpredictableRegression, LongMulEqualDestsRejectedEverywhere)
{
    // UMULL/SMULL with rdLo == rdHi is UNPREDICTABLE: the builder and
    // the assembler reject it statically, and the executor traps when
    // a hand-built stream smuggles one through anyway.
    ProgramBuilder b("badumull");
    EXPECT_THROW(b.umull(R3, R3, R1, R2), FatalError);
    ProgramBuilder b2("badsmull");
    EXPECT_THROW(b2.smull(R5, R5, R1, R2), FatalError);

    EXPECT_THROW(assemble("badsrc", "umull r3, r3, r1, r2\n"),
                 FatalError);
    EXPECT_THROW(assemble("badsrc2", "smull r6, r6, r0, r2\n"),
                 FatalError);

    MicroOp uop;
    uop.op = Op::UMULL;
    uop.rd = R3; // rdHi
    uop.ra = R3; // rdLo
    uop.rm = R1;
    uop.rs = R2;
    CpuState state;
    Memory mem;
    IoSinks io;
    ExecInfo info;
    AddrCodec codec;
    EXPECT_THROW(execute(uop, 0, codec, state, mem, io, info),
                 TrapError);
}

} // namespace
} // namespace pfits
