/** @file Edge-case and failure-injection tests across the toolchain:
 *  synthesis resource exhaustion, unusual translation shapes, and
 *  figure-table consistency against raw results. */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "common/logging.hh"
#include "exp/figures.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

RunResult
runArmAndFits(const Program &prog, const SynthParams &sp,
              RunResult *fits_out)
{
    ProfileInfo profile = profileProgram(prog);
    FitsIsa isa = synthesize(profile, sp, prog.name);
    FitsProgram fits = translateProgram(prog, isa, profile);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fe(std::move(fits));
    RunResult ra = Machine(arm, CoreConfig{}).run();
    *fits_out = Machine(fe, CoreConfig{}).run();
    return ra;
}

TEST(SynthEdge, RegisterListDictionaryOverflowIsFatal)
{
    ProgramBuilder b("lists");
    // 17 distinct register lists overflow the 16-entry dictionary.
    for (unsigned i = 1; i <= 17; ++i) {
        MicroOp push;
        push.op = Op::STM;
        push.rn = SP;
        push.regList = static_cast<uint16_t>(i);
        push.ldmIsPop = false;
        b.emit(push);
    }
    b.exit();
    Program prog = b.finish();
    ProfileInfo profile = profileProgram(prog, false);
    EXPECT_THROW(synthesize(profile, SynthParams{}, "lists"),
                 FatalError);
    // A larger dictionary resolves it.
    SynthParams roomy;
    roomy.listDictCapacity = 32;
    EXPECT_NO_THROW(synthesize(profile, roomy, "lists"));
}

TEST(SynthEdge, ConditionalMemoryAndReturn)
{
    ProgramBuilder b("condmem");
    Label fn = b.label();
    Label start = b.label();
    b.b(start);
    b.bind(fn);
    b.cmpi(R0, 5);
    b.ret(Cond::GT);         // conditional return (saturates at 6)
    b.addi(R0, R0, 1);
    b.ret();
    b.bind(start);
    b.zeros("buf", 64);
    b.lea(R1, "buf");
    b.movi(R0, 0);
    Label loop = b.here();
    b.bl(fn);
    b.cmpi(R0, 3);
    b.str(R0, R1, 4, Cond::EQ);  // conditional store
    b.ldr(R2, R1, 4, Cond::GE);  // conditional load
    b.cmpi(R0, 6);
    b.b(loop, Cond::LT);
    b.add(R0, R0, R2);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(SynthEdge, NegativeRegisterOffsetsSurvive)
{
    ProgramBuilder b("negoff");
    b.words("tab", {10, 20, 30, 40, 50});
    b.lea(R1, "tab");
    b.addi(R1, R1, 16); // point at tab[4]
    b.movi(R2, 2);
    // address = r1 - r2*... : uARM negative register offset
    MicroOp ldr;
    ldr.op = Op::LDR;
    ldr.rd = R0;
    ldr.rn = R1;
    ldr.rm = R2;
    ldr.memKind = MemOffsetKind::REG_SHIFT_IMM;
    ldr.shiftType = ShiftType::LSL;
    ldr.shiftAmount = 2;
    ldr.memAdd = false;
    b.emit(ldr); // loads tab[2] == 30
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted.at(0), 30u);
    EXPECT_EQ(fits_rr.io.emitted.at(0), 30u);
}

TEST(SynthEdge, ShiftByRegisterForms)
{
    ProgramBuilder b("shiftreg");
    b.movi(R0, 0x1234);
    b.movi(R1, 4);
    b.lslr(R2, R0, R1);             // mov-class shift by register
    b.aluShiftReg(AluOp::ADD, R3, R2, R0, ShiftType::LSR, R1);
    b.eor(R0, R2, R3);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(SynthEdge, LongMultipliesViaBakedPairs)
{
    ProgramBuilder b("longmul");
    // Use >8 registers so 4-bit fields force destination baking.
    for (uint8_t reg = R0; reg <= R9; ++reg)
        b.movi(reg, 0x1000u + reg);
    b.umull(R4, R5, R6, R7);
    b.smull(R8, R9, R6, R7);
    b.eor(R0, R4, R5);
    b.eor(R0, R0, R8);
    b.eor(R0, R0, R9);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    RunResult fits_rr;
    RunResult arm_rr = runArmAndFits(prog, SynthParams{}, &fits_rr);
    EXPECT_EQ(arm_rr.io.emitted, fits_rr.io.emitted);
}

TEST(FigureConsistency, TablesAgreeWithRawResults)
{
    Runner runner;
    const BenchResult &crc = runner.get("crc32");

    Table t3 = fig3StaticMapping(runner);
    // Find crc32's row and compare against the raw mapping stat.
    bool found = false;
    for (const auto &row : t3.body()) {
        if (row[0] == "crc32") {
            EXPECT_NEAR(std::stod(row[1]),
                        100.0 * crc.mapping.staticRate(), 0.05);
            found = true;
        }
    }
    EXPECT_TRUE(found);

    Table t13 = fig13MissRate(runner);
    for (const auto &row : t13.body()) {
        if (row[0] == "crc32") {
            EXPECT_NEAR(
                std::stod(row[1]),
                crc.of(ConfigId::ARM16).run.icache.missesPerMillion(),
                0.1);
        }
    }
}

TEST(FigureConsistency, RunnerMemoizes)
{
    Runner runner;
    const BenchResult &a = runner.get("gsm");
    const BenchResult &b = runner.get("gsm");
    EXPECT_EQ(&a, &b); // same object, not a re-simulation
}

TEST(FigureConsistency, SavingsAreEnergyRatios)
{
    Runner runner;
    const BenchResult &bench = runner.get("qsort");
    using C = CachePowerBreakdown::Component;
    double manual = 1.0 - bench.of(ConfigId::FITS8).icache.totalJ() /
                              bench.of(ConfigId::ARM16).icache.totalJ();
    EXPECT_DOUBLE_EQ(bench.saving(ConfigId::FITS8, C::TOTAL), manual);
}

} // namespace
} // namespace pfits
