/**
 * @file
 * Corruption fuzzing for decoder-configuration loading.
 *
 * The stored configuration lives in non-volatile state on the FITS
 * processor, so the loader's contract is absolute: any damaged input
 * throws a typed, recoverable error — it never crashes, hangs, or
 * silently builds a wrong decode table. These tests attack one real
 * synthesized configuration with truncation, line reordering, seeded
 * random bit flips, and finally an exhaustive single-bit-flip sweep
 * over the whole text, which proves the checksum's single-bit
 * detection guarantee rather than sampling it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "fits/profile.hh"
#include "fits/serialize.hh"
#include "fits/synth.hh"
#include "mibench/mibench.hh"

namespace pfits
{
namespace
{

std::string
configFor(const char *bench)
{
    mibench::Workload w = mibench::findBench(bench).build();
    ProfileInfo profile = profileProgram(w.program);
    return saveFitsIsa(synthesize(profile, SynthParams{}, bench));
}

/** The one accepted-input contract: a clean load re-saves byte-identically. */
void
expectRejectedOrUntouched(const std::string &mutated,
                          const std::string &original)
{
    try {
        FitsIsa isa = loadFitsIsa(mutated);
        // Load succeeded: the mutation must have been the identity
        // (the checksum rejects every real change), and re-saving must
        // reproduce the input bit-for-bit.
        EXPECT_EQ(mutated, original);
        EXPECT_EQ(saveFitsIsa(isa), mutated);
    } catch (const FatalError &) {
        // Rejected with the typed error: the contract holds.
    }
}

TEST(SerializeFuzz, EveryTruncationIsRejected)
{
    std::string text = configFor("crc32");
    ASSERT_GT(text.size(), 100u);
    for (size_t len = 0; len < text.size(); ++len)
        EXPECT_THROW(loadFitsIsa(text.substr(0, len)), FatalError)
            << "prefix of " << len << " bytes accepted";
}

TEST(SerializeFuzz, LineShufflesAreRejectedOrIdentity)
{
    std::string text = configFor("crc32");
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        lines.push_back(text.substr(pos, nl - pos + 1));
        pos = nl + 1;
    }
    ASSERT_GT(lines.size(), 4u);

    Rng rng(0xf0221e);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::string> shuffled = lines;
        for (size_t i = shuffled.size() - 1; i > 0; --i)
            std::swap(shuffled[i],
                      shuffled[rng.below(static_cast<uint32_t>(i + 1))]);
        std::string mutated;
        for (const std::string &line : shuffled)
            mutated += line;
        expectRejectedOrUntouched(mutated, text);
    }
}

TEST(SerializeFuzz, SeededRandomBitFlipsAreRejected)
{
    std::string text = configFor("crc32");
    FaultPlan plan(FaultParams{});
    for (int trial = 0; trial < 500; ++trial) {
        std::string mutated = text;
        int64_t bit = plan.corruptTextBit(mutated);
        ASSERT_GE(bit, 0);
        ASSERT_NE(mutated, text);
        EXPECT_THROW(loadFitsIsa(mutated), FatalError)
            << "flipped bit " << bit;
    }
    EXPECT_EQ(plan.injected(FaultTarget::CONFIG), 500u);
}

TEST(SerializeFuzz, MultiBitBurstsAreRejectedOrUntouched)
{
    // Multi-bit bursts can in principle cancel in a checksum; FNV-1a
    // makes that astronomically unlikely but not impossible, so the
    // contract here is reject-or-identity, not reject-always.
    std::string text = configFor("gsm");
    FaultPlan plan(FaultParams{});
    Rng rng(0xbeef5);
    for (int trial = 0; trial < 200; ++trial) {
        std::string mutated = text;
        uint32_t flips = 2 + rng.below(7);
        for (uint32_t i = 0; i < flips; ++i)
            plan.corruptTextBit(mutated);
        expectRejectedOrUntouched(mutated, text);
    }
}

/**
 * The acceptance criterion: every single-bit corruption of a saved
 * configuration is detected. FNV-1a's per-byte update is a bijection of
 * the running hash, so two equal-length texts differing in one byte
 * never collide; the checksum line itself is covered by its strict
 * "checksum " + 16-hex-digit syntax; the final newline is covered by
 * the must-end-in-newline rule. Exhaustive, not sampled.
 */
TEST(SerializeFuzz, ExhaustiveSingleBitFlipAlwaysDetected)
{
    std::string text = configFor("crc32");
    const size_t bits = text.size() * 8;
    for (size_t bit = 0; bit < bits; ++bit) {
        std::string mutated = text;
        mutated[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(mutated[bit / 8]) ^
            (1u << (bit % 8)));
        EXPECT_THROW(loadFitsIsa(mutated), FatalError)
            << "single-bit flip at bit " << bit << " accepted";
    }
}

TEST(SerializeFuzz, CorruptionThrowsTypedConfigError)
{
    std::string text = configFor("crc32");
    std::string mutated = text;
    mutated[text.size() / 3] ^= 0x10;
    // Catchable as the recoverable type, and as the legacy base type.
    EXPECT_THROW(loadFitsIsa(mutated), ConfigError);
    EXPECT_THROW(loadFitsIsa(mutated), FatalError);
    try {
        loadFitsIsa(mutated);
        FAIL() << "corrupt config accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(SerializeFuzz, ChecksumLineTamperingIsRejected)
{
    std::string text = configFor("crc32");
    size_t line_start = text.rfind("checksum ");
    ASSERT_NE(line_start, std::string::npos);

    // A well-formed but wrong checksum value.
    std::string wrong = text.substr(0, line_start) +
                        "checksum 0123456789abcdef\n";
    EXPECT_THROW(loadFitsIsa(wrong), ConfigError);

    // A malformed checksum line (wrong digit count / bad hex).
    std::string short_hex = text.substr(0, line_start) +
                            "checksum 0123456789abcde\n";
    EXPECT_THROW(loadFitsIsa(short_hex), ConfigError);
    std::string bad_hex = text.substr(0, line_start) +
                          "checksum 0123456789abcdeg\n";
    EXPECT_THROW(loadFitsIsa(bad_hex), ConfigError);

    // Missing trailing newline.
    std::string clipped = text.substr(0, text.size() - 1);
    EXPECT_THROW(loadFitsIsa(clipped), ConfigError);
}

TEST(SerializeFuzz, ChecksumFunctionIsFnv1a64)
{
    // Pin the function so saved configs stay loadable across builds.
    EXPECT_EQ(configChecksum(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(configChecksum("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(configChecksum("ab"), configChecksum("ba"));
}

} // namespace
} // namespace pfits
