/** @file Parameterized property sweeps: ALU semantics against a C++
 *  oracle across every opcode, cache behaviour across geometries and
 *  policies, and an assemble/disassemble round-trip fuzz. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "cache/cache.hh"
#include "common/rng.hh"
#include "exp/parallel.hh"
#include "sim/executor.hh"

namespace pfits
{
namespace
{

// --- ALU oracle sweep -------------------------------------------------------

/** Reference semantics of one data-processing op (result only). */
uint32_t
oracle(AluOp op, uint32_t a, uint32_t b, bool carry)
{
    switch (op) {
      case AluOp::AND: case AluOp::TST: return a & b;
      case AluOp::EOR: case AluOp::TEQ: return a ^ b;
      case AluOp::SUB: case AluOp::CMP: return a - b;
      case AluOp::RSB: return b - a;
      case AluOp::ADD: case AluOp::CMN: return a + b;
      case AluOp::ADC: return a + b + (carry ? 1 : 0);
      case AluOp::SBC: return a - b - (carry ? 0 : 1);
      case AluOp::RSC: return b - a - (carry ? 0 : 1);
      case AluOp::ORR: return a | b;
      case AluOp::MOV: return b;
      case AluOp::BIC: return a & ~b;
      case AluOp::MVN: return ~b;
      default: panic("bad op");
    }
}

class AluSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AluSweep, MatchesOracleOnRandomOperands)
{
    const AluOp op = static_cast<AluOp>(GetParam());
    Rng rng(0xa10 + GetParam());
    CpuState state;
    Memory mem;
    IoSinks io;
    AddrCodec codec{0x8000, 2};
    ExecInfo info;

    for (int trial = 0; trial < 2000; ++trial) {
        uint32_t a = rng.next();
        uint32_t b = rng.next();
        bool carry = rng.below(2) != 0;
        state.regs[R1] = a;
        state.regs[R2] = b;
        state.flags.c = carry;
        state.regs[R0] = 0xdeadbeef;

        MicroOp uop;
        uop.op = static_cast<Op>(op);
        uop.rd = R0;
        uop.rn = R1;
        uop.rm = R2;
        uop.op2Kind = Operand2Kind::REG;
        execute(uop, 0, codec, state, mem, io, info);

        uint32_t expected = oracle(op, a, b, carry);
        if (isCompareOp(op)) {
            EXPECT_EQ(state.regs[R0], 0xdeadbeefu);
        } else {
            ASSERT_EQ(state.regs[R0], expected)
                << aluOpName(op) << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSweep,
    ::testing::Range(0u, static_cast<unsigned>(AluOp::NUM)),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return aluOpName(static_cast<AluOp>(info.param));
    });

/** Flag semantics sweep: N/Z always mirror the result; C/V for adds
 *  and subtracts follow 64-bit reference arithmetic. */
class FlagSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FlagSweep, FlagsMatchWideArithmetic)
{
    const AluOp op = static_cast<AluOp>(GetParam());
    Rng rng(0xf1a6 + GetParam());
    CpuState state;
    Memory mem;
    IoSinks io;
    AddrCodec codec{0x8000, 2};
    ExecInfo info;

    for (int trial = 0; trial < 2000; ++trial) {
        uint32_t a = rng.next();
        uint32_t b = rng.next();
        state.regs[R1] = a;
        state.regs[R2] = b;
        state.flags = Flags{};
        state.flags.c = true; // no pending borrow for SBC-style ops

        MicroOp uop;
        uop.op = static_cast<Op>(op);
        uop.setsFlags = true;
        uop.rd = R0;
        uop.rn = R1;
        uop.rm = R2;
        uop.op2Kind = Operand2Kind::REG;
        execute(uop, 0, codec, state, mem, io, info);

        uint32_t result = oracle(op, a, b, true);
        EXPECT_EQ(state.flags.n, (result >> 31) != 0);
        EXPECT_EQ(state.flags.z, result == 0);
        if (op == AluOp::ADD || op == AluOp::CMN) {
            uint64_t wide = static_cast<uint64_t>(a) + b;
            EXPECT_EQ(state.flags.c, wide > 0xffffffffull);
            int64_t swide = static_cast<int64_t>(
                                static_cast<int32_t>(a)) +
                            static_cast<int32_t>(b);
            EXPECT_EQ(state.flags.v,
                      swide != static_cast<int32_t>(result));
        }
        if (op == AluOp::SUB || op == AluOp::CMP) {
            EXPECT_EQ(state.flags.c, a >= b); // no borrow
            int64_t swide = static_cast<int64_t>(
                                static_cast<int32_t>(a)) -
                            static_cast<int32_t>(b);
            EXPECT_EQ(state.flags.v,
                      swide != static_cast<int32_t>(result));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ArithOps, FlagSweep,
    ::testing::Values(static_cast<unsigned>(AluOp::ADD),
                      static_cast<unsigned>(AluOp::SUB),
                      static_cast<unsigned>(AluOp::CMP),
                      static_cast<unsigned>(AluOp::CMN)),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return aluOpName(static_cast<AluOp>(info.param));
    });

// --- cache geometry sweep ----------------------------------------------------

struct CacheGeom
{
    uint32_t size;
    uint32_t assoc;
    uint32_t line;
    ReplPolicy policy;
};

class CacheSweep : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheSweep, InvariantsHoldUnderRandomTraffic)
{
    const CacheGeom geom = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = geom.size;
    cfg.assoc = geom.assoc;
    cfg.lineBytes = geom.line;
    cfg.policy = geom.policy;
    Cache cache(cfg);
    Rng rng(geom.size * 31 + geom.assoc);

    uint64_t hits = 0;
    for (int i = 0; i < 30000; ++i) {
        // 75% temporal locality around a moving hot region.
        uint32_t addr = rng.below(4) ? (rng.below(64) * geom.line)
                                     : rng.next() & 0xffffff;
        CacheAccessResult res = cache.access(addr, rng.below(8) == 0);
        if (res.hit) {
            ++hits;
            EXPECT_FALSE(res.writeback);
        }
        // A just-accessed line must be resident (read or write-alloc).
        EXPECT_TRUE(cache.contains(addr));
    }
    const CacheStats &stats = cache.stats();
    EXPECT_EQ(stats.accesses(), 30000u);
    EXPECT_EQ(stats.accesses() - stats.misses(), hits);
    EXPECT_GT(stats.missRate(), 0.0);
    EXPECT_LT(stats.missRate(), 1.0);
    EXPECT_LE(stats.writebacks, stats.misses());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheGeom{1024, 1, 16, ReplPolicy::LRU},
                      CacheGeom{8192, 4, 32, ReplPolicy::LRU},
                      CacheGeom{16384, 32, 32, ReplPolicy::LRU},
                      CacheGeom{16384, 32, 32, ReplPolicy::FIFO},
                      CacheGeom{4096, 2, 64, ReplPolicy::ROUND_ROBIN},
                      CacheGeom{2048, 8, 16, ReplPolicy::RANDOM}),
    [](const ::testing::TestParamInfo<CacheGeom> &info) {
        const CacheGeom &g = info.param;
        return std::to_string(g.size) + "B_" +
               std::to_string(g.assoc) + "w_" +
               std::to_string(g.line) + "l_" +
               replPolicyName(g.policy)[0] +
               std::to_string(static_cast<int>(g.policy));
    });

// --- assemble/disassemble fuzz -------------------------------------------------

/** One shard's tally. Failures travel back as data because gtest
 *  assertion macros are not safe from pool worker threads. */
struct ShardReport
{
    int checked = 0;
    std::vector<std::string> failures;
};

TEST(AsmRoundTrip, DisassemblyReassemblesToTheSameWord)
{
    // Sharded through the experiment engine's pool: each shard owns a
    // deterministic Rng, so coverage is identical at any job count.
    constexpr size_t kShards = 8;
    constexpr int kItersPerShard = 100000 / kShards;
    constexpr int kTargetPerShard = 4000 / kShards;
    ThreadPool pool; // defaultJobs(): exercises the engine under test
    auto reports = parallelMap<ShardReport>(pool, kShards, [&](size_t s) {
        ShardReport rep;
        Rng rng(0xd15a55ull + s * 0x9e3779b97f4a7c15ull);
        for (int i = 0;
             i < kItersPerShard && rep.checked < kTargetPerShard; ++i) {
            uint32_t word = rng.next();
            MicroOp uop;
            if (!decodeArm(word, uop))
                continue;
            // Branch text uses relative "+n" which the assembler
            // expresses with labels; system/wide-move forms round-trip
            // elsewhere.
            if (isBranchOp(uop.op) || uop.op == Op::SWI ||
                uop.op == Op::NOP) {
                continue;
            }
            // UNPREDICTABLE long multiplies (rdLo == rdHi) decode but
            // the assembler deliberately refuses to emit them.
            if ((uop.op == Op::UMULL || uop.op == Op::SMULL) &&
                uop.rd == uop.ra) {
                continue;
            }
            uint32_t canonical;
            if (!encodeArm(uop, canonical))
                continue;
            std::string text = disassemble(uop);
            Program prog;
            try {
                prog = assemble("fuzz", text + "\n");
            } catch (const FatalError &) {
                rep.failures.push_back("could not reassemble '" + text +
                                       "'");
                continue;
            }
            if (prog.code.size() != 1u) {
                rep.failures.push_back("'" + text +
                                       "' assembled to " +
                                       std::to_string(prog.code.size()) +
                                       " words");
                continue;
            }
            // Raw words may differ in semantically dead fields (e.g.
            // the unused rn of MVN); printed semantics must round-trip.
            std::string back = disassembleArm(prog.code[0]);
            if (back != text)
                rep.failures.push_back("'" + text + "' came back as '" +
                                       back + "'");
            ++rep.checked;
        }
        return rep;
    });
    int checked = 0;
    for (const ShardReport &rep : reports) {
        checked += rep.checked;
        for (const std::string &f : rep.failures)
            ADD_FAILURE() << f;
    }
    EXPECT_GE(checked, 4000);
}

} // namespace
} // namespace pfits
