/** @file Tests for the requirement-analysis and synthesis reports. */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/builder.hh"
#include "fits/profile.hh"
#include "fits/report.hh"
#include "fits/synth.hh"

namespace pfits
{
namespace
{

Program
tinyProgram()
{
    ProgramBuilder b("tiny");
    b.movi(R0, 20);
    Label loop = b.here();
    b.addi(R1, R1, 3);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    return b.finish();
}

TEST(Report, RequirementAnalysisOrderedByDynWeight)
{
    ProfileInfo profile = profileProgram(tinyProgram());
    Table table = requirementAnalysis(profile);
    ASSERT_GT(table.rows(), 3u);
    // Rows are ordered by dynamic count, descending.
    uint64_t prev = UINT64_MAX;
    for (const auto &row : table.body()) {
        uint64_t dyn = std::stoull(row.at(2));
        EXPECT_LE(dyn, prev);
        prev = dyn;
    }
}

TEST(Report, RequirementAnalysisTopN)
{
    ProfileInfo profile = profileProgram(tinyProgram());
    Table full = requirementAnalysis(profile);
    Table top = requirementAnalysis(profile, 2);
    EXPECT_EQ(top.rows(), 2u);
    EXPECT_GE(full.rows(), top.rows());
}

TEST(Report, RegisterPressureMarksFreeRegisters)
{
    ProfileInfo profile = profileProgram(tinyProgram());
    Table table = registerPressure(profile);
    ASSERT_EQ(table.rows(), NUM_REGS);
    size_t free_count = 0;
    for (const auto &row : table.body()) {
        if (row.back() == "free")
            ++free_count;
    }
    EXPECT_GT(free_count, 8u); // the tiny loop touches r0, r1 only
    EXPECT_EQ(table.body()[R0].back(), "live");
    EXPECT_EQ(table.body()[R5].back(), "free");
}

TEST(Report, SynthesisSummaryShowsCoverage)
{
    ProfileInfo profile = profileProgram(tinyProgram());
    FitsIsa isa = synthesize(profile, SynthParams{}, "tiny");
    Table table = synthesisSummary(profile, isa);
    ASSERT_EQ(table.rows(), profile.sigs.size());
    // Every signature row reports either a slot class or "expansion".
    for (const auto &row : table.body()) {
        if (row.back() == "one-instruction") {
            EXPECT_NE(row[3], "-");
        } else {
            EXPECT_EQ(row.back(), "expansion");
        }
    }
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("Synthesis summary"), std::string::npos);
}

} // namespace
} // namespace pfits
