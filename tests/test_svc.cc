/** @file The pfitsd service stack: wire framing and entry integrity,
 *  the crash-safe result store (recovery, quarantine, eviction), the
 *  embedded server end to end, and the client's degradation ladder —
 *  deadline timeouts answering "watchdog-expired", retry-then-fallback
 *  against a hung daemon, and clean local fallback when no daemon
 *  exists. Results through the daemon must be identical to local ones;
 *  a broken daemon must never break a run. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fileio.hh"
#include "exp/experiment.hh"
#include "exp/simcache.hh"
#include "exp/simservice.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "svc/client.hh"
#include "svc/proto.hh"
#include "svc/server.hh"
#include "svc/store.hh"

namespace pfits
{
namespace
{

/** A fresh subdirectory under gtest's temp dir. */
std::string
freshDir(const std::string &name)
{
    static int seq = 0;
    std::string dir = testing::TempDir() + "pfits_svc_" + name + "_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(seq++);
    ::mkdir(dir.c_str(), 0777);
    return dir;
}

/** A made-up but fully populated result, for store/proto tests. */
SimResult
sampleResult()
{
    SimResult r;
    r.run.benchmark = "crc32";
    r.run.config = "ARM16";
    r.run.instructions = 123456;
    r.run.annulled = 789;
    r.run.cycles = 98765;
    r.run.clockHz = 2e8;
    r.run.icache = {100, 0, 7, 0, 0, 2, 1, 1};
    r.run.dcache = {50, 25, 3, 2, 4, 0, 0, 0};
    r.run.fetchToggleBits = 4242;
    r.run.fetchBitsTotal = 999999;
    r.run.icacheRefillWords = 56;
    r.run.dmemAccesses = 75;
    r.run.takenBranches = 1200;
    r.run.io.console = "hello\n";
    r.run.io.emitted = {0xdeadbeefu, 7u};
    for (int i = 0; i < 16; ++i)
        r.run.finalState.regs[i] = 0x1000u + i;
    r.run.finalState.flags.z = true;
    r.run.finalState.flags.c = true;
    r.run.finalState.halted = true;
    r.run.outcome = RunOutcome::Completed;
    r.run.trapReason = "";
    r.faultRetries = 2;
    r.intervals.push_back({0, 1000, 900, 800, 5, 321, 32000});
    r.intervals.push_back({1000, 1000, 950, 810, 2, 345, 32000});
    r.tracePath = "";
    return r;
}

SimCacheKey
sampleKey()
{
    return {0x1111222233334444ull, 0x5555666677778888ull,
            0x9999aaaabbbbccccull, 0xddddeeeeffff0001ull};
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.run.benchmark, b.run.benchmark);
    EXPECT_EQ(a.run.config, b.run.config);
    EXPECT_EQ(a.run.instructions, b.run.instructions);
    EXPECT_EQ(a.run.annulled, b.run.annulled);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.clockHz, b.run.clockHz);
    EXPECT_EQ(a.run.icache.reads, b.run.icache.reads);
    EXPECT_EQ(a.run.icache.readMisses, b.run.icache.readMisses);
    EXPECT_EQ(a.run.icache.parityDetections,
              b.run.icache.parityDetections);
    EXPECT_EQ(a.run.dcache.writes, b.run.dcache.writes);
    EXPECT_EQ(a.run.dcache.writebacks, b.run.dcache.writebacks);
    EXPECT_EQ(a.run.fetchToggleBits, b.run.fetchToggleBits);
    EXPECT_EQ(a.run.fetchBitsTotal, b.run.fetchBitsTotal);
    EXPECT_EQ(a.run.icacheRefillWords, b.run.icacheRefillWords);
    EXPECT_EQ(a.run.dmemAccesses, b.run.dmemAccesses);
    EXPECT_EQ(a.run.takenBranches, b.run.takenBranches);
    EXPECT_EQ(a.run.io.console, b.run.io.console);
    EXPECT_EQ(a.run.io.emitted, b.run.io.emitted);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.run.finalState.regs[i], b.run.finalState.regs[i]);
    EXPECT_EQ(a.run.finalState.flags.z, b.run.finalState.flags.z);
    EXPECT_EQ(a.run.finalState.halted, b.run.finalState.halted);
    EXPECT_EQ(a.run.outcome, b.run.outcome);
    EXPECT_EQ(a.run.trapReason, b.run.trapReason);
    EXPECT_EQ(a.faultRetries, b.faultRetries);
    ASSERT_EQ(a.intervals.size(), b.intervals.size());
    for (size_t i = 0; i < a.intervals.size(); ++i) {
        EXPECT_EQ(a.intervals[i].firstInstruction,
                  b.intervals[i].firstInstruction);
        EXPECT_EQ(a.intervals[i].cycles, b.intervals[i].cycles);
        EXPECT_EQ(a.intervals[i].toggleBits,
                  b.intervals[i].toggleBits);
    }
    EXPECT_EQ(a.tracePath, b.tracePath);
}

/** Connect to @p path; gtest-asserts on failure. */
int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd,
                        reinterpret_cast<struct sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << path;
    return fd;
}

/** One raw request/response round trip against a live server. */
std::string
rawRequest(const std::string &socket_path, const std::string &payload,
           int timeout_ms = 10'000)
{
    int fd = connectTo(socket_path);
    std::string response, err;
    EXPECT_TRUE(sendFrame(fd, payload, timeout_ms, &err)) << err;
    EXPECT_TRUE(recvFrame(fd, &response, timeout_ms, &err)) << err;
    ::close(fd);
    return response;
}

// --- proto: hex, keys, entries -------------------------------------------

TEST(SvcProto, HexRoundTripAndRejection)
{
    for (uint64_t v : {0ull, 1ull, 0xdeadbeefull,
                       0xffffffffffffffffull, 0x0123456789abcdefull}) {
        uint64_t back = 1;
        ASSERT_TRUE(parseHexU64(hexString(v), &back));
        EXPECT_EQ(back, v);
    }
    uint64_t out;
    EXPECT_FALSE(parseHexU64("", &out));
    EXPECT_FALSE(parseHexU64("12345", &out));
    EXPECT_FALSE(parseHexU64("0x", &out));
    EXPECT_FALSE(parseHexU64("0xg", &out));
    EXPECT_FALSE(parseHexU64("0x00000000000000001", &out));
}

TEST(SvcProto, KeyJsonRoundTrip)
{
    SimCacheKey key = sampleKey();
    std::ostringstream os;
    JsonWriter w(os, 0);
    writeKeyJson(w, key);
    SimCacheKey back{};
    ASSERT_TRUE(parseKeyJson(JsonValue::parse(os.str()), &back));
    EXPECT_TRUE(back == key);
    EXPECT_EQ(keyFileName(key),
              "1111222233334444-5555666677778888-"
              "9999aaaabbbbcccc-ddddeeeeffff0001.json");
}

TEST(SvcProto, CoreConfigJsonRoundTripPreservesHash)
{
    CoreConfig core;
    core.name = "FITS8";
    core.issueWidth = 1;
    core.icache.sizeBytes = 8 * 1024;
    core.icache.parity = true;
    core.dcache.policy = ReplPolicy::ROUND_ROBIN;
    core.packedFetch = true;
    core.maxInstructions = 123'456'789;

    std::ostringstream os;
    JsonWriter w(os, 0);
    writeCoreConfigJson(w, core);
    CoreConfig back;
    ASSERT_TRUE(parseCoreConfigJson(JsonValue::parse(os.str()), &back));
    EXPECT_EQ(back.name, core.name);
    EXPECT_EQ(back.dcache.policy, ReplPolicy::ROUND_ROBIN);
    // The content hash is the contract the daemon checks against.
    EXPECT_EQ(hashCoreConfig(back), hashCoreConfig(core));
}

TEST(SvcProto, FaultParamsJsonRoundTripPreservesHash)
{
    FaultParams fp;
    fp.seed = 0xfeedfacecafebeefull;
    fp.icacheMeanInterval = 50'000;
    fp.memoryMeanInterval = 70'000;

    std::ostringstream os;
    JsonWriter w(os, 0);
    writeFaultParamsJson(w, fp);
    FaultParams back;
    ASSERT_TRUE(
        parseFaultParamsJson(JsonValue::parse(os.str()), &back));
    EXPECT_EQ(back.seed, fp.seed);
    EXPECT_EQ(hashFaultParams(back, 3), hashFaultParams(fp, 3));
}

TEST(SvcProto, EntryRoundTripIsLossless)
{
    SimCacheKey key = sampleKey();
    SimResult result = sampleResult();
    std::string entry = encodeResultEntry(key, result);

    SimCacheKey back_key{};
    SimResult back;
    std::string err;
    ASSERT_TRUE(decodeResultEntry(entry, &back_key, &back, &err))
        << err;
    EXPECT_TRUE(back_key == key);
    expectSameResult(result, back);
}

TEST(SvcProto, EntryCorruptionIsAlwaysDetected)
{
    std::string entry = encodeResultEntry(sampleKey(), sampleResult());
    SimCacheKey k;
    SimResult r;
    std::string err;

    // Pristine text verifies.
    ASSERT_TRUE(decodeResultEntry(entry, &k, &r, &err)) << err;

    // Any single flipped bit in the JSON line must fail the checksum.
    for (size_t pos : {size_t(10), entry.size() / 2,
                       entry.find('\n') - 2}) {
        std::string bad = entry;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x04);
        EXPECT_FALSE(decodeResultEntry(bad, &k, &r, &err))
            << "flip at " << pos << " accepted";
    }

    // Truncation (a torn write on a non-atomic filesystem).
    EXPECT_FALSE(decodeResultEntry(entry.substr(0, entry.size() / 2),
                                   &k, &r, &err));
    EXPECT_FALSE(decodeResultEntry("", &k, &r, &err));

    // A forged trailer over modified content.
    std::string forged = entry;
    forged.replace(forged.find("123456"), 6, "654321");
    EXPECT_FALSE(decodeResultEntry(forged, &k, &r, &err));
}

// --- framing over a socketpair -------------------------------------------

TEST(SvcProto, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string big(100'000, 'x');
    big += "end";
    std::string err;
    std::thread sender([&] {
        ASSERT_TRUE(sendFrame(fds[0], "first", 5'000, &err)) << err;
        ASSERT_TRUE(sendFrame(fds[0], big, 5'000, &err)) << err;
    });
    std::string got;
    ASSERT_TRUE(recvFrame(fds[1], &got, 5'000, &err)) << err;
    EXPECT_EQ(got, "first");
    ASSERT_TRUE(recvFrame(fds[1], &got, 5'000, &err)) << err;
    EXPECT_EQ(got, big);
    sender.join();

    // Deadline: nothing arriving must time out, not hang.
    EXPECT_FALSE(recvFrame(fds[1], &got, 100, &err));
    EXPECT_EQ(err, "timeout");

    // A closed peer is a clean EOF.
    ::close(fds[0]);
    EXPECT_FALSE(recvFrame(fds[1], &got, 1'000, &err));
    EXPECT_EQ(err, "eof");
    ::close(fds[1]);
}

// --- the result store ----------------------------------------------------

TEST(SvcStore, PutGetRoundTripAndStats)
{
    ResultStore store(freshDir("putget"));
    ASSERT_TRUE(store.open());

    SimCacheKey key = sampleKey();
    std::string entry = encodeResultEntry(key, sampleResult());
    std::string err;
    ASSERT_TRUE(store.put(key, entry, &err)) << err;
    EXPECT_TRUE(store.contains(key));

    std::string got;
    ASSERT_TRUE(store.get(key, &got));
    EXPECT_EQ(got, entry) << "stored text must be served verbatim";

    SimCacheKey other = key;
    other.program ^= 1;
    EXPECT_FALSE(store.get(other, &got));

    StoreStats s = store.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.bytes, entry.size());
}

TEST(SvcStore, PutRejectsCorruptOrMisKeyedEntries)
{
    ResultStore store(freshDir("putbad"));
    ASSERT_TRUE(store.open());

    SimCacheKey key = sampleKey();
    std::string entry = encodeResultEntry(key, sampleResult());

    std::string bad = entry;
    bad[20] ^= 0x10;
    std::string err;
    EXPECT_FALSE(store.put(key, bad, &err));

    SimCacheKey wrong = key;
    wrong.config ^= 0xff;
    EXPECT_FALSE(store.put(wrong, entry, &err));
    EXPECT_EQ(store.stats().entries, 0u);
}

TEST(SvcStore, RecoveryScanQuarantinesTornAndCorruptEntries)
{
    std::string dir = freshDir("recover");
    SimCacheKey good_key = sampleKey();
    std::string good = encodeResultEntry(good_key, sampleResult());
    {
        ResultStore store(dir);
        ASSERT_TRUE(store.open());
        ASSERT_TRUE(store.put(good_key, good));
    }

    // A second valid entry, then corrupt it on disk (bit rot).
    SimCacheKey rot_key = good_key;
    rot_key.faults ^= 0x42;
    SimResult rot_result = sampleResult();
    rot_result.run.cycles += 1;
    std::string rot = encodeResultEntry(rot_key, rot_result);
    rot[rot.size() / 3] ^= 0x01;
    ASSERT_TRUE(writeFileAtomic(dir + "/" + keyFileName(rot_key), rot));

    // A truncated entry (torn write on a weak filesystem).
    SimCacheKey torn_key = good_key;
    torn_key.observers ^= 0x99;
    std::string torn = encodeResultEntry(torn_key, sampleResult());
    ASSERT_TRUE(writeFileAtomic(dir + "/" + keyFileName(torn_key),
                                torn.substr(0, torn.size() / 2)));

    // A stale temp file from an interrupted atomic write.
    std::string stale = dir + "/" + keyFileName(good_key) +
                        ".tmp.999.0";
    ASSERT_TRUE(writeFileAtomic(stale, "garbage"));

    // An entry whose filename does not match its embedded key.
    std::string misnamed = dir + "/" +
                           keyFileName({1, 2, 3, 4});
    ASSERT_TRUE(writeFileAtomic(misnamed, good));

    ResultStore store(dir);
    ASSERT_TRUE(store.open());
    StoreStats s = store.stats();
    EXPECT_EQ(s.entries, 1u) << "only the pristine entry survives";
    EXPECT_EQ(s.quarantined, 3u);

    std::string got;
    EXPECT_TRUE(store.get(good_key, &got));
    EXPECT_EQ(got, good);
    EXPECT_FALSE(store.get(rot_key, &got));
    EXPECT_FALSE(store.get(torn_key, &got));

    // Quarantined entries were moved aside, not destroyed.
    std::ifstream qf(store.quarantineDir() + "/" +
                     keyFileName(rot_key));
    EXPECT_TRUE(qf.good());
    // The stale temp was deleted outright.
    struct stat st;
    EXPECT_NE(::stat(stale.c_str(), &st), 0);
}

TEST(SvcStore, CorruptionUnderneathALiveStoreIsQuarantinedOnGet)
{
    std::string dir = freshDir("liverot");
    ResultStore store(dir);
    ASSERT_TRUE(store.open());

    SimCacheKey key = sampleKey();
    std::string entry = encodeResultEntry(key, sampleResult());
    ASSERT_TRUE(store.put(key, entry));

    // Rot the file behind the store's back.
    std::string rotten = entry;
    rotten[30] ^= 0x08;
    std::ofstream(dir + "/" + keyFileName(key)) << rotten;

    std::string got;
    EXPECT_FALSE(store.get(key, &got)) << "rot must not be served";
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(store.contains(key));
}

TEST(SvcStore, ByteBudgetEvictsLeastRecentlyUsed)
{
    SimCacheKey k1 = sampleKey();
    SimCacheKey k2 = k1, k3 = k1;
    k2.program ^= 2;
    k3.program ^= 3;
    std::string e1 = encodeResultEntry(k1, sampleResult());
    std::string e2 = encodeResultEntry(k2, sampleResult());
    std::string e3 = encodeResultEntry(k3, sampleResult());

    // Budget fits two entries but not three.
    ResultStore store(freshDir("evict"), 2 * e1.size() + e1.size() / 2);
    ASSERT_TRUE(store.open());
    ASSERT_TRUE(store.put(k1, e1));
    ASSERT_TRUE(store.put(k2, e2));
    EXPECT_EQ(store.stats().entries, 2u);

    // Touch k1 so k2 is cold, then overflow with k3.
    std::string got;
    ASSERT_TRUE(store.get(k1, &got));
    ASSERT_TRUE(store.put(k3, e3));

    StoreStats s = store.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_TRUE(store.contains(k1));
    EXPECT_FALSE(store.contains(k2)) << "LRU victim must be k2";
    EXPECT_TRUE(store.contains(k3));
}

// --- server + client end to end ------------------------------------------

/** Spin up an embedded server in a fresh dir. */
struct TestServer
{
    explicit TestServer(SvcServerConfig cfg = {})
    {
        std::string dir = freshDir("srv");
        cfg.socketPath = dir + "/d.sock";
        cfg.storeDir = dir + "/store";
        config = cfg;
        server = std::make_unique<SvcServer>(cfg);
        std::string err;
        EXPECT_TRUE(server->start(&err)) << err;
    }

    SvcServerConfig config;
    std::unique_ptr<SvcServer> server;
};

SvcClientConfig
clientConfigFor(const TestServer &ts)
{
    SvcClientConfig cfg;
    cfg.socketPath = ts.config.socketPath;
    cfg.requestTimeoutMs = 60'000;
    cfg.maxRetries = 1;
    cfg.backoffBaseMs = 5;
    cfg.backoffMaxMs = 20;
    return cfg;
}

/** Build the Runner-shaped request for a suite benchmark. */
struct SuiteRequest
{
    explicit SuiteRequest(const std::string &bench)
        : prep(prepareBenchmark(bench, ExperimentParams{}))
    {
        req.fe = prep.armFe.get();
        req.core = &core;
        req.bench = bench;
        req.isFits = false;
    }

    PreparedBench prep;
    CoreConfig core;
    SimRequest req;
};

TEST(SvcService, DaemonComputesSuiteBenchmarkIdenticallyToLocal)
{
    TestServer ts;
    SuiteRequest sr("crc32");

    // The reference: a purely local simulation of the same request.
    SimCache::instance().clear();
    SimResult local = localSimService().simulate(sr.req);

    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    SvcClient client(clientConfigFor(ts));
    EXPECT_TRUE(client.ping());

    // Cold local cache: the client must take the socket path, have
    // the daemon simulate, and return a byte-equal result.
    SimCache::instance().clear();
    SimResult remote = client.simulate(sr.req);
    expectSameResult(local, remote);
    EXPECT_EQ(reg.counter("svc.requests").value(), 1u);
    EXPECT_EQ(reg.counter("svc.store.hits").value(), 1u);
    EXPECT_EQ(reg.counter("svc.fallbacks").value(), 0u);

    // The hit was seeded into the local SimCache: a repeat is free
    // (no new request), and the manifest provenance sees the key.
    SimResult repeat = client.simulate(sr.req);
    expectSameResult(local, repeat);
    EXPECT_EQ(reg.counter("svc.requests").value(), 1u);

    // Warm store, cold caches: served from disk without simulating.
    SimCache::instance().clear();
    uint64_t store_hits_before = ts.server->store().stats().hits;
    SimResult warmed = client.simulate(sr.req);
    expectSameResult(local, warmed);
    EXPECT_GT(ts.server->store().stats().hits, store_hits_before);
    EXPECT_EQ(reg.counter("svc.store.hits").value(), 2u);

    client.recordServerStats();
    EXPECT_EQ(reg.gauge("svc.store.quarantined").value(), 0);

    MetricRegistry::install(prev);
    SimCache::instance().clear();
}

TEST(SvcService, WarmStoreSurvivesDaemonRestart)
{
    std::string dir = freshDir("restart");
    SvcServerConfig cfg;
    cfg.socketPath = dir + "/d.sock";
    cfg.storeDir = dir + "/store";

    SuiteRequest sr("sha");
    {
        SvcServer first(cfg);
        std::string err;
        ASSERT_TRUE(first.start(&err)) << err;
        SvcClientConfig ccfg;
        ccfg.socketPath = cfg.socketPath;
        SvcClient client(ccfg);
        SimCache::instance().clear();
        client.simulate(sr.req);
        first.stop();
    }

    // A new daemon over the same store dir recovers the entry and
    // serves it without a single fresh simulation.
    SvcServer second(cfg);
    std::string err;
    ASSERT_TRUE(second.start(&err)) << err;
    EXPECT_EQ(second.store().stats().entries, 1u);

    SimCache::instance().clear();
    SvcClientConfig ccfg;
    ccfg.socketPath = cfg.socketPath;
    SvcClient client(ccfg);
    SimResult served = client.simulate(sr.req);
    EXPECT_EQ(SimCache::instance().misses(), 0u)
        << "a warm store must avoid local simulation entirely";
    EXPECT_EQ(served.run.outcome, RunOutcome::Completed);
    EXPECT_EQ(second.store().stats().hits, 1u);
    second.stop();
    SimCache::instance().clear();
}

TEST(SvcService, DeadlineExpiryAnswersWatchdogExpiredAndClientFallsBack)
{
    SvcServerConfig cfg;
    cfg.testComputeDelayMs = 2'000; // every compute stalls 2 s
    TestServer ts(cfg);
    SuiteRequest sr("crc32");

    // Raw protocol check: a sim request with a short deadline gets a
    // structured timeout carrying the WatchdogExpired vocabulary.
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("schema", kSvcSchema);
        w.field("op", "sim");
        w.field("bench", "crc32");
        w.field("isa", "arm");
        w.key("core");
        writeCoreConfigJson(w, sr.core);
        w.key("faults");
        writeFaultParamsJson(w, FaultParams{});
        w.field("max_retries", static_cast<uint64_t>(0));
        w.key("observers");
        w.beginObject();
        w.field("interval_instructions", static_cast<uint64_t>(0));
        w.endObject();
        w.key("key");
        writeKeyJson(w, sr.req.key());
        w.field("deadline_ms", static_cast<int64_t>(200));
        w.endObject();

        JsonValue resp =
            JsonValue::parse(rawRequest(ts.config.socketPath, os.str()));
        ASSERT_TRUE(resp.get("ok").asBool());
        EXPECT_EQ(resp.get("status").asString(), "timeout");
        EXPECT_EQ(resp.get("outcome").asString(),
                  runOutcomeName(RunOutcome::WatchdogExpired));
        EXPECT_EQ(resp.get("outcome").asString(), "watchdog-expired");
    }

    // Client check: the same expiry degrades to local simulation —
    // the run still completes, and the hop is counted.
    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    SvcClientConfig ccfg = clientConfigFor(ts);
    ccfg.requestTimeoutMs = 300;
    SvcClient client(ccfg);

    SimCache::instance().clear();
    SimResult result = client.simulate(sr.req);
    EXPECT_EQ(result.run.outcome, RunOutcome::Completed);
    EXPECT_EQ(reg.counter("svc.timeouts").value(), 1u);
    EXPECT_EQ(reg.counter("svc.fallbacks").value(), 1u);

    MetricRegistry::install(prev);
    ts.server->stop();
    SimCache::instance().clear();
}

TEST(SvcService, HungServerRetriesWithBackoffThenFallsBack)
{
    // A listener that accepts nothing: connects land in the backlog,
    // the request is written into the socket buffer, and no response
    // ever comes — the worst kind of peer.
    std::string dir = freshDir("hung");
    std::string sock = dir + "/hung.sock";
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<struct sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 8), 0);

    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    SvcClientConfig ccfg;
    ccfg.socketPath = sock;
    ccfg.requestTimeoutMs = 100;
    ccfg.maxRetries = 2;
    ccfg.backoffBaseMs = 5;
    ccfg.backoffMaxMs = 20;
    SvcClient client(ccfg);

    SuiteRequest sr("crc32");
    SimCache::instance().clear();
    const auto start = std::chrono::steady_clock::now();
    SimResult result = client.simulate(sr.req);
    const auto transport_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(result.run.outcome, RunOutcome::Completed)
        << "a hung daemon must never fail the run";
    // requestTimeoutMs bounds the WHOLE retry loop: the hung receive
    // eats the 100 ms budget (plus the fixed 500 ms deadline grace)
    // once, leaving nothing for the retry ladder — not once per
    // configured attempt with full backoffs in between. The bound
    // includes the local crc32 fallback simulation; generous slack for
    // a loaded host.
    EXPECT_LT(transport_ms, 1'500)
        << "retry loop must respect the total transport budget";
    EXPECT_LE(reg.counter("svc.retries").value(), 2u);
    EXPECT_EQ(reg.counter("svc.fallbacks").value(), 1u);
    EXPECT_EQ(reg.counter("svc.store.hits").value(), 0u);

    MetricRegistry::install(prev);
    ::close(lfd);
    SimCache::instance().clear();
}

TEST(SvcService, BackoffSleepsAreClampedToTheRemainingBudget)
{
    // Connects to a never-created socket fail instantly, so the whole
    // budget is available for backoff sleeps — which must still be
    // clipped to it. With a 10 s backoff base and five retries the
    // un-clamped ladder would sleep the better part of a minute.
    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    SvcClientConfig ccfg;
    ccfg.socketPath = freshDir("clamp") + "/never-created.sock";
    ccfg.requestTimeoutMs = 200;
    ccfg.maxRetries = 5;
    ccfg.backoffBaseMs = 10'000;
    ccfg.backoffMaxMs = 60'000;
    SvcClient client(ccfg);

    SuiteRequest sr("crc32");
    SimCache::instance().clear();
    const auto start = std::chrono::steady_clock::now();
    SimResult result = client.simulate(sr.req);
    const auto transport_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(result.run.outcome, RunOutcome::Completed);
    EXPECT_LT(transport_ms, 2'000)
        << "backoff sleeps must not cross the caller's deadline";
    // The first backoff is clamped to the remaining budget, so at
    // least one retry fires before the budget runs out.
    EXPECT_GE(reg.counter("svc.retries").value(), 1u);
    EXPECT_EQ(reg.counter("svc.fallbacks").value(), 1u);

    MetricRegistry::install(prev);
    SimCache::instance().clear();
}

TEST(SvcService, FailedAttemptsDoNotLeakDescriptors)
{
    // Every attempt opens its own connection; repeated failures must
    // return each fd on every exit path.
    SvcClientConfig ccfg;
    ccfg.socketPath = freshDir("fds") + "/never-created.sock";
    ccfg.requestTimeoutMs = 50;
    ccfg.maxRetries = 0;
    SvcClient client(ccfg);
    ASSERT_FALSE(client.ping()); // warm up lazy fds (logging, etc.)

    const auto countFds = [] {
        size_t n = 0;
        DIR *d = ::opendir("/proc/self/fd");
        if (d == nullptr)
            return n;
        while (::readdir(d) != nullptr)
            ++n;
        ::closedir(d);
        return n;
    };
    const size_t before = countFds();
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(client.ping());
    EXPECT_EQ(countFds(), before);
}

TEST(SvcService, AbsentDaemonFallsBackCleanly)
{
    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    SvcClientConfig ccfg;
    ccfg.socketPath = freshDir("absent") + "/never-created.sock";
    ccfg.maxRetries = 2;
    ccfg.backoffBaseMs = 1;
    ccfg.backoffMaxMs = 5;
    SvcClient client(ccfg);
    EXPECT_FALSE(client.ping());

    SuiteRequest sr("crc32");
    SimCache::instance().clear();
    SimResult result = client.simulate(sr.req);
    EXPECT_EQ(result.run.outcome, RunOutcome::Completed);
    EXPECT_GT(reg.counter("svc.fallbacks").value(), 0u);

    MetricRegistry::install(prev);
    SimCache::instance().clear();
}

TEST(SvcService, GetPutLeaseProtocolForNonSuitePrograms)
{
    TestServer ts;
    SimCacheKey key = sampleKey();
    std::string entry = encodeResultEntry(key, sampleResult());

    auto getReq = [&](bool lease) {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject();
        w.field("schema", kSvcSchema);
        w.field("op", "get");
        w.key("key");
        writeKeyJson(w, key);
        w.field("wait", false);
        w.field("lease", lease);
        w.field("deadline_ms", static_cast<int64_t>(2'000));
        w.endObject();
        return os.str();
    };

    // Miss, with a compute lease granted to us.
    JsonValue r1 =
        JsonValue::parse(rawRequest(ts.config.socketPath, getReq(true)));
    ASSERT_TRUE(r1.get("ok").asBool());
    EXPECT_EQ(r1.get("status").asString(), "miss");
    EXPECT_TRUE(r1.get("lease").asBool());

    // We "computed"; publish the entry.
    std::ostringstream put;
    JsonWriter w(put, 0);
    w.beginObject();
    w.field("schema", kSvcSchema);
    w.field("op", "put");
    w.field("entry", entry);
    w.endObject();
    JsonValue r2 =
        JsonValue::parse(rawRequest(ts.config.socketPath, put.str()));
    ASSERT_TRUE(r2.get("ok").asBool());
    EXPECT_EQ(r2.get("status").asString(), "stored");

    // Everyone now hits, byte-for-byte.
    JsonValue r3 = JsonValue::parse(
        rawRequest(ts.config.socketPath, getReq(false)));
    ASSERT_TRUE(r3.get("ok").asBool());
    EXPECT_EQ(r3.get("status").asString(), "hit");
    EXPECT_EQ(r3.get("entry").asString(), entry);
}

TEST(SvcService, StatsOpReturnsLiveStoreAndMetricSnapshot)
{
    TestServer ts;
    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    reg.counter("unit.test.counter").add(3);

    // Seed one entry so the store section has something to count.
    SimCacheKey key = sampleKey();
    std::string entry = encodeResultEntry(key, sampleResult());
    std::ostringstream put;
    JsonWriter w(put, 0);
    w.beginObject();
    w.field("schema", kSvcSchema);
    w.field("op", "put");
    w.field("entry", entry);
    w.endObject();
    ASSERT_TRUE(
        JsonValue::parse(rawRequest(ts.config.socketPath, put.str()))
            .get("ok")
            .asBool());

    JsonValue resp = JsonValue::parse(rawRequest(
        ts.config.socketPath,
        "{\"schema\":\"pfits-svc-v1\",\"op\":\"stats\"}"));
    ASSERT_TRUE(resp.get("ok").asBool());
    EXPECT_EQ(resp.get("schema").asString(), kSvcSchema);
    EXPECT_TRUE(resp.get("uptime_ms").isNumber());
    EXPECT_GE(resp.get("uptime_ms").asNumber(), 0.0);
    EXPECT_TRUE(resp.get("inflight").isNumber());

    const JsonValue &store = resp.get("store");
    ASSERT_TRUE(store.isObject());
    EXPECT_DOUBLE_EQ(store.get("entries").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(store.get("bytes").asNumber(),
                     static_cast<double>(entry.size()));
    for (const char *field :
         {"hits", "misses", "evictions", "quarantined"})
        EXPECT_TRUE(store.get(field).isNumber()) << field;

    // The connection thread serves stats from the process-wide
    // registry — the same one this test installed.
    const JsonValue &metrics = resp.get("metrics");
    ASSERT_TRUE(metrics.isObject());
    EXPECT_DOUBLE_EQ(metrics.get("unit.test.counter").asNumber(), 3.0);

    MetricRegistry::install(prev);
}

TEST(SvcService, MalformedRequestsGetStructuredErrorsNotCrashes)
{
    TestServer ts;
    for (const std::string &bad :
         {std::string("not json at all"), std::string("{}"),
          std::string("{\"op\":\"frobnicate\"}"),
          std::string("{\"op\":\"sim\"}"),
          std::string("{\"op\":\"put\",\"entry\":\"garbage\"}"),
          std::string("{\"op\":\"get\",\"key\":{\"program\":17}}")}) {
        JsonValue resp =
            JsonValue::parse(rawRequest(ts.config.socketPath, bad));
        ASSERT_TRUE(resp.isObject()) << bad;
        EXPECT_FALSE(resp.get("ok").asBool()) << bad;
        EXPECT_TRUE(resp.get("error").isString()) << bad;
    }
    // The server is still healthy afterwards.
    SvcClientConfig ccfg;
    ccfg.socketPath = ts.config.socketPath;
    SvcClient client(ccfg);
    EXPECT_TRUE(client.ping());
}

} // namespace
} // namespace pfits
