/** @file The strongest property test in the suite: random programs
 *  through the complete pipeline. Each generated program runs on the
 *  fixed ARM decoder and, after profile/synthesize/translate, on the
 *  programmable FITS decoder; every architectural register and all
 *  emitted output must match. Also covers the RunResult stats surface. */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/builder.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

/**
 * Generate a random but well-formed program: a counted loop whose body
 * is a random mix of ALU ops (immediate/register/shifted forms, some
 * conditional), memory traffic into a scratch buffer, and multiplies.
 * Registers r0-r10 are fair game; r12 stays free by convention.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("random" + std::to_string(seed));
    b.zeros("buf", 256);
    b.zeros("result", 4);

    // r0-r8 only: r9 is the buffer base and r10 the loop counter.
    auto reg = [&]() { return static_cast<uint8_t>(rng.below(9)); };

    b.lea(R9, "buf");
    for (uint8_t r = R0; r <= R8; ++r)
        b.movi(r, rng.next() & 0xffff);
    b.movi(R10, 40 + rng.below(60)); // loop counter

    Label loop = b.here();
    unsigned body = 6 + rng.below(20);
    for (unsigned i = 0; i < body; ++i) {
        // Conditions must be used carefully: only ops that cannot
        // disturb the loop counter (r10) or the base (r9).
        uint8_t rd = reg();
        uint8_t rn = reg();
        uint8_t rm = reg();
        Cond cond = rng.below(4) == 0
                        ? static_cast<Cond>(rng.below(14))
                        : Cond::AL;
        switch (rng.below(10)) {
          case 0:
            b.alu(AluOp::ADD, rd, rn, rm, cond, rng.below(2));
            break;
          case 1:
            b.alu(AluOp::SUB, rd, rn, rm, cond, rng.below(2));
            break;
          case 2:
            b.alu(static_cast<AluOp>(rng.below(2) ? AluOp::EOR
                                                  : AluOp::ORR),
                  rd, rn, rm, cond);
            break;
          case 3:
            b.aluShift(AluOp::ADD, rd, rn, rm,
                       static_cast<ShiftType>(rng.below(4)),
                       static_cast<uint8_t>(rng.below(31)), cond);
            break;
          case 4:
            b.alui(AluOp::ADD, rd, rn, rng.below(256), cond);
            break;
          case 5:
            b.alui(AluOp::AND, rd, rn, 0xff, cond);
            break;
          case 6: {
            // Bounded store + load through the scratch buffer.
            uint8_t val = reg();
            int32_t disp = static_cast<int32_t>(rng.below(32)) * 4;
            b.str(val, R9, disp, cond);
            b.ldr(rd, R9, disp, cond);
            break;
          }
          case 7:
            b.mul(rd, rn, rm, cond);
            break;
          case 8:
            b.cmp(rn, rm);
            break;
          default:
            b.aluShiftReg(AluOp::EOR, rd, rn, rm, ShiftType::LSR,
                          /*rs=*/static_cast<uint8_t>(rng.below(9)),
                          cond);
            break;
        }
    }
    b.subi(R10, R10, 1, Cond::AL, true);
    b.b(loop, Cond::NE);

    // Fold every register into one observable word.
    b.movi(R11, 0);
    for (uint8_t r = R0; r <= R8; ++r)
        b.eor(R11, R11, r);
    b.mov(R0, R11);
    b.lea(R1, "result");
    b.str(R0, R1, 0);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    return b.finish();
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramTest, FitsMatchesArmEverywhere)
{
    Program prog = randomProgram(GetParam());

    ArmFrontEnd arm(prog);
    RunResult ra = Machine(arm, CoreConfig{}).run();

    ProfileInfo profile = profileProgram(prog);
    // Alternate between default and deliberately starved synthesis so
    // both the 1:1 and the expansion paths get fuzzed.
    SynthParams sp;
    if (GetParam() % 3 == 1) {
        sp.maxSlots = 8;
        sp.opDictCapacity = 4;
    } else if (GetParam() % 3 == 2) {
        sp.forceWideRegFields = true;
        sp.enableFusedShifts = false;
    }
    FitsIsa isa = synthesize(profile, sp, prog.name);
    FitsProgram fits_prog = translateProgram(prog, isa, profile);
    FitsFrontEnd fits(std::move(fits_prog));
    RunResult rf = Machine(fits, CoreConfig{}).run();

    EXPECT_EQ(ra.io.emitted, rf.io.emitted);
    for (unsigned reg = 0; reg < NUM_REGS; ++reg) {
        if (reg == R12 || reg == LR)
            continue; // synthesis scratch / return addresses differ
        EXPECT_EQ(ra.finalState.regs[reg], rf.finalState.regs[reg])
            << "seed " << GetParam() << " r" << reg;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(RunStats, SurfaceExposesRunMetrics)
{
    Program prog = randomProgram(99);
    ArmFrontEnd arm(prog);
    RunResult rr = Machine(arm, CoreConfig{}).run();

    StatGroup group("run");
    rr.addStats(group);
    EXPECT_DOUBLE_EQ(group.lookup("instructions"),
                     static_cast<double>(rr.instructions));
    EXPECT_DOUBLE_EQ(group.lookup("cycles"),
                     static_cast<double>(rr.cycles));
    EXPECT_NEAR(group.lookup("ipc"), rr.ipc(), 1e-12);
    EXPECT_DOUBLE_EQ(group.lookup("icache.accesses"),
                     static_cast<double>(rr.icache.accesses()));
    EXPECT_GT(group.lookup("seconds"), 0.0);

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("run.icache.mpmi"), std::string::npos);
    EXPECT_NE(os.str().find("run.dcache.accesses"), std::string::npos);
}

} // namespace
} // namespace pfits
