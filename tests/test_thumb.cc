/** @file Tests for the THUMB-like code-size estimator. */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "thumb/thumb.hh"

namespace pfits
{
namespace
{

MicroOp
decodeOne(const Program &prog, size_t index)
{
    MicroOp uop;
    EXPECT_TRUE(decodeArm(prog.code.at(index), uop));
    return uop;
}

TEST(Thumb, SimpleOpsCostOneUnit)
{
    ProgramBuilder b("t");
    b.movi(R0, 5);          // mov imm8 form exists
    b.add(R0, R0, R1);      // 3-address add exists in Thumb
    b.cmp(R0, R1);
    b.nop();
    b.ret();
    Program prog = b.finish();
    for (size_t i = 0; i < prog.code.size(); ++i)
        EXPECT_EQ(thumbUnitsFor(decodeOne(prog, i)), 1u) << i;
}

TEST(Thumb, PredicationCostsABranch)
{
    ProgramBuilder b("t");
    b.addi(R0, R0, 1, Cond::EQ);
    b.exit();
    EXPECT_EQ(thumbUnitsFor(decodeOne(b.finish(), 0)), 2u);
}

TEST(Thumb, ThreeAddressLogicalNeedsAMove)
{
    ProgramBuilder b("t");
    b.eor(R0, R1, R2); // rd != rn: Thumb EOR is two-address
    b.eor(R0, R0, R2); // rd == rn: native
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 0)), 2u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 1)), 1u);
}

TEST(Thumb, WideImmediatesUseLiteralPool)
{
    ProgramBuilder b("t");
    b.alui(AluOp::MOV, R0, 0, 0x3f000000u); // rotated imm > 255
    b.andi(R1, R1, 0xff00);                 // no AND-imm form in Thumb
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 0)), 3u);
    EXPECT_GE(thumbUnitsFor(decodeOne(prog, 1)), 3u);
}

TEST(Thumb, ShiftedOperandCostsExtra)
{
    ProgramBuilder b("t");
    b.aluShift(AluOp::ADD, R0, R1, R2, ShiftType::LSL, 4);
    b.lsli(R0, R0, 4); // native two-address shift
    b.exit();
    Program prog = b.finish();
    EXPECT_GE(thumbUnitsFor(decodeOne(prog, 0)), 2u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 1)), 1u);
}

TEST(Thumb, BlAndLongOps)
{
    ProgramBuilder b("t");
    Label fn = b.here();
    b.bl(fn);
    b.umull(R0, R1, R2, R3);
    b.mla(R0, R1, R2, R3);
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 0)), 2u); // 32-bit BL
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 1)), 2u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 2)), 2u);
}

TEST(Thumb, MemoryOffsetsOutOfThumbRange)
{
    ProgramBuilder b("t");
    b.ldr(R0, R1, 64);    // imm5*4 reachable
    b.ldr(R0, R1, 256);   // beyond word imm5 range
    b.ldr(R0, SP, 512);   // sp-relative reach is larger
    b.ldrb(R0, R1, 31);   // reachable
    b.ldrb(R0, R1, 32);   // not
    b.ldrsh(R0, R1, 4);   // imm form absent in Thumb
    b.exit();
    Program prog = b.finish();
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 0)), 1u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 1)), 2u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 2)), 1u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 3)), 1u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 4)), 2u);
    EXPECT_EQ(thumbUnitsFor(decodeOne(prog, 5)), 2u);
}

TEST(Thumb, MovPairBecomesOneLiteralLoad)
{
    ProgramBuilder b("t");
    b.movi(R0, 0x12345678); // movw + movt
    b.nop();
    b.exit();
    ThumbStats stats = thumbEstimate(b.finish());
    EXPECT_EQ(stats.armInstructions, 4u);
    // pair -> 3 units (ldr + pool word), nop 1, swi 1.
    EXPECT_EQ(stats.thumbUnits, 5u);
}

TEST(Thumb, EstimateLandsBetweenFitsAndArm)
{
    // A mixed program: the THUMB estimate must be larger than 16-bit
    // minimum (i.e. > 1 unit per instr) but below 2x.
    ProgramBuilder b("mix");
    b.zeros("buf", 256);
    b.lea(R1, "buf");
    b.movi(R2, 32);
    Label loop = b.here();
    b.ldr(R3, R1, 0);
    b.aluShift(AluOp::ADD, R3, R3, R3, ShiftType::LSL, 1);
    b.str(R3, R1, 0);
    b.addi(R1, R1, 4);
    b.subi(R2, R2, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    ThumbStats stats = thumbEstimate(b.finish());
    double factor = stats.expansionFactor();
    EXPECT_GT(factor, 1.0);
    EXPECT_LT(factor, 2.0);
    EXPECT_EQ(stats.codeBytes(), stats.thumbUnits * 2);
}

} // namespace
} // namespace pfits
