/** @file Tests for the probe/observer layer (sim/probe.hh). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/builder.hh"
#include "common/fault.hh"
#include "exp/experiment.hh"
#include "exp/parallel.hh"
#include "exp/simcache.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"

namespace pfits
{
namespace
{

/** A small deterministic program used by the focused tests. */
Program
countdownProgram(uint32_t n)
{
    ProgramBuilder b("countdown");
    b.zeros("result", 4);
    b.movi(R0, n);
    Label loop = b.here();
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.movi(R0, 0xabcd);
    b.lea(R1, "result");
    b.str(R0, R1, 0);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    return b.finish();
}

/** Field-for-field equality of two RunResults (the observable core). */
void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.annulled, b.annulled);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchToggleBits, b.fetchToggleBits);
    EXPECT_EQ(a.fetchBitsTotal, b.fetchBitsTotal);
    EXPECT_EQ(a.icacheRefillWords, b.icacheRefillWords);
    EXPECT_EQ(a.dmemAccesses, b.dmemAccesses);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.icache.reads, b.icache.reads);
    EXPECT_EQ(a.icache.readMisses, b.icache.readMisses);
    EXPECT_EQ(a.dcache.reads, b.dcache.reads);
    EXPECT_EQ(a.dcache.readMisses, b.dcache.readMisses);
    EXPECT_EQ(a.dcache.writes, b.dcache.writes);
    EXPECT_EQ(a.dcache.writeMisses, b.dcache.writeMisses);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.io.emitted, b.io.emitted);
}

/** An observer that counts every event it sees. */
struct CountingObserver final : SimObserver
{
    uint64_t fetches = 0;
    uint64_t newWordFetches = 0;
    uint64_t issues = 0;
    uint64_t commits = 0;
    uint64_t dataAccesses = 0;
    uint64_t faults = 0;
    uint64_t runEnds = 0;

    void
    onFetch(const FetchEvent &e) override
    {
        ++fetches;
        if (e.newWord)
            ++newWordFetches;
    }

    void onIssue(const IssueEvent &) override { ++issues; }
    void onCommit(const CommitEvent &) override { ++commits; }
    void onDataAccess(const DataAccessEvent &) override
    {
        ++dataAccesses;
    }
    void onFault(const FaultEvent &) override { ++faults; }
    void onRunEnd(RunResult &) override { ++runEnds; }
};

TEST(Probe, ObserverEquivalenceAcrossSuite)
{
    // The tentpole promise: attaching external observers changes no
    // observable result field, for every suite kernel on all four
    // paper configurations.
    const auto &suite = mibench::suite();
    struct Case
    {
        std::string what;
        RunResult plain, observed;
    };
    auto cases = parallelMap<std::vector<Case>>(
        ThreadPool::shared(), suite.size(), [&](size_t i) {
            const mibench::BenchInfo &info = suite[i];
            mibench::Workload w = info.build();
            ProfileInfo profile = profileProgram(w.program);
            FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
            FitsProgram fp = translateProgram(w.program, isa, profile);
            ArmFrontEnd arm(w.program);
            FitsFrontEnd fits(std::move(fp));

            std::vector<Case> out;
            for (int c = 0; c < 4; ++c) {
                bool is_fits = c >= 2;
                const FrontEnd &fe =
                    is_fits ? static_cast<const FrontEnd &>(fits)
                            : static_cast<const FrontEnd &>(arm);
                CoreConfig core;
                core.icache.sizeBytes =
                    (c % 2 == 0) ? 16 * 1024 : 8 * 1024;

                Case cs;
                cs.what = std::string(info.name) + "/" +
                          std::to_string(c);
                cs.plain = Machine(fe, core).run();

                CountingObserver counter;
                ObserverList list;
                list.add(&counter);
                cs.observed = Machine(fe, core).run(nullptr, &list);
                out.push_back(std::move(cs));
            }
            return out;
        });
    for (const auto &per_bench : cases)
        for (const Case &cs : per_bench)
            expectSameResult(cs.plain, cs.observed, cs.what);
}

TEST(Probe, EventCountsMatchRunResult)
{
    ArmFrontEnd fe(countdownProgram(500));
    Machine m(fe, CoreConfig{});
    CountingObserver counter;
    ObserverList list;
    list.add(&counter);
    RunResult rr = m.run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);

    EXPECT_EQ(counter.commits, rr.instructions);
    EXPECT_EQ(counter.issues, rr.instructions);
    EXPECT_EQ(counter.fetches, rr.instructions);
    EXPECT_EQ(counter.newWordFetches, rr.icache.accesses());
    EXPECT_EQ(counter.dataAccesses, rr.dmemAccesses);
    EXPECT_EQ(counter.faults, 0u);
    EXPECT_EQ(counter.runEnds, 1u);
}

TEST(Probe, PackedFetchSkipsArrayAccesses)
{
    // With a 16-bit stream and the fetch buffer on, FetchEvents still
    // fire per instruction but only word-crossing ones touch the array.
    mibench::Workload w = mibench::findBench("crc32").build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsFrontEnd fe(translateProgram(w.program, isa, profile));
    CoreConfig core;
    core.packedFetch = true;
    CountingObserver counter;
    ObserverList list;
    list.add(&counter);
    RunResult rr = Machine(fe, core).run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_EQ(counter.fetches, rr.instructions);
    EXPECT_EQ(counter.newWordFetches, rr.icache.accesses());
    EXPECT_LT(counter.newWordFetches, counter.fetches);
}

TEST(Probe, IntervalSumsMatchRunTotals)
{
    // Invariant: the interval series partitions the run — every
    // accumulated quantity sums exactly to the RunResult total.
    mibench::Workload w = mibench::findBench("crc32").build();
    ArmFrontEnd fe(w.program);
    IntervalStatsObserver intervals(10'000);
    ObserverList list;
    list.add(&intervals);
    RunResult rr = Machine(fe, CoreConfig{}).run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);

    const auto &samples = intervals.intervals();
    ASSERT_GT(samples.size(), 2u);

    uint64_t instrs = 0, cycles = 0, accesses = 0, misses = 0;
    uint64_t toggles = 0, bits = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
        const IntervalSample &s = samples[i];
        if (i + 1 < samples.size())
            EXPECT_EQ(s.instructions, 10'000u) << "interval " << i;
        EXPECT_EQ(s.firstInstruction, instrs) << "interval " << i;
        instrs += s.instructions;
        cycles += s.cycles;
        accesses += s.icacheAccesses;
        misses += s.icacheMisses;
        toggles += s.toggleBits;
        bits += s.fetchBits;
    }
    EXPECT_EQ(instrs, rr.instructions);
    EXPECT_EQ(cycles, rr.cycles);
    EXPECT_EQ(accesses, rr.icache.accesses());
    EXPECT_EQ(misses, rr.icache.misses());
    EXPECT_EQ(toggles, rr.fetchToggleBits);
    EXPECT_EQ(bits, rr.fetchBitsTotal);
}

TEST(Probe, IntervalSeriesCoversShortRuns)
{
    // A run shorter than one interval still produces exactly one
    // sample holding the whole run.
    ArmFrontEnd fe(countdownProgram(3));
    IntervalStatsObserver intervals(1'000'000);
    ObserverList list;
    list.add(&intervals);
    RunResult rr = Machine(fe, CoreConfig{}).run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    ASSERT_EQ(intervals.intervals().size(), 1u);
    EXPECT_EQ(intervals.intervals()[0].instructions, rr.instructions);
    EXPECT_EQ(intervals.intervals()[0].cycles, rr.cycles);
}

TEST(Probe, IntervalExactMultipleFoldsDrainIntoLastSample)
{
    // When the retired count is an exact multiple of the interval the
    // pipeline-drain cycles fold into the last sample instead of
    // spawning an empty trailing one: every sample keeps the fixed
    // interval width and the cycle sum still matches the run total.
    ArmFrontEnd probe_fe(countdownProgram(64));
    RunResult probe = Machine(probe_fe, CoreConfig{}).run();
    ASSERT_EQ(probe.outcome, RunOutcome::Completed);
    ASSERT_GT(probe.instructions, 4u);
    ASSERT_EQ(probe.instructions % 2, 0u)
        << "pick a count giving an even total";

    for (SimBackend backend : {SimBackend::Interp, SimBackend::Fast}) {
        CoreConfig core;
        core.backend = backend;
        ArmFrontEnd fe(countdownProgram(64));
        IntervalStatsObserver intervals(probe.instructions / 2);
        ObserverList list;
        list.add(&intervals);
        RunResult rr = Machine(fe, core).run(nullptr, &list);
        ASSERT_EQ(rr.outcome, RunOutcome::Completed);
        ASSERT_EQ(rr.instructions, probe.instructions);

        const auto &samples = intervals.intervals();
        ASSERT_EQ(samples.size(), 2u);
        uint64_t cycles = 0;
        for (const IntervalSample &s : samples) {
            EXPECT_EQ(s.instructions, probe.instructions / 2);
            cycles += s.cycles;
        }
        EXPECT_EQ(cycles, rr.cycles);
    }
}

TEST(Probe, StallReasonsAreClassified)
{
    // countdown's SUBS->B(cond) chain stalls on flags (operands), the
    // taken branch stalls the front-end; dual-issue pairs report None.
    ArmFrontEnd fe(countdownProgram(50));
    struct StallTally final : SimObserver
    {
        uint64_t byReason[4] = {};
        void
        onIssue(const IssueEvent &e) override
        {
            ++byReason[static_cast<size_t>(e.reason)];
            if (e.reason == StallReason::None)
                EXPECT_EQ(e.stallCycles, 0u);
            else
                EXPECT_GT(e.stallCycles, 0u);
        }
    } tally;
    ObserverList list;
    list.add(&tally);
    RunResult rr = Machine(fe, CoreConfig{}).run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_GT(tally.byReason[static_cast<size_t>(StallReason::None)],
              0u);
    EXPECT_GT(
        tally.byReason[static_cast<size_t>(StallReason::FrontEnd)], 0u);
    EXPECT_GT(
        tally.byReason[static_cast<size_t>(StallReason::Operands)], 0u);
    uint64_t total = 0;
    for (uint64_t n : tally.byReason)
        total += n;
    EXPECT_EQ(total, rr.instructions);
}

/** Fault plan that reliably machine-checks crc32 (see test_fault.cc). */
FaultParams
aggressiveFaults()
{
    FaultParams fp;
    fp.seed = 0x5eed;
    fp.icacheMeanInterval = 100;
    return fp;
}

TEST(Probe, TraceRingIsBoundedAndDumpsOnFault)
{
    mibench::Workload w = mibench::findBench("crc32").build();
    ArmFrontEnd fe(w.program);
    CoreConfig core;
    core.icache.parity = true;

    FaultPlan plan(aggressiveFaults());
    constexpr size_t kDepth = 32;
    TraceObserver trace(kDepth);
    std::ostringstream sink;
    trace.setSink(&sink);
    ObserverList list;
    list.add(&trace);
    RunResult rr = Machine(fe, core).run(&plan, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::FaultDetected);

    // Ring cleared after the dump, dump bounded: header + at most
    // kDepth event lines, all JSON objects.
    EXPECT_EQ(trace.size(), 0u);
    std::istringstream lines(sink.str());
    std::string line;
    size_t n = 0;
    bool sawHeader = false, sawFault = false;
    while (std::getline(lines, line)) {
        ++n;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        if (line.find("\"event\":\"run\"") != std::string::npos)
            sawHeader = true;
        if (line.find("\"event\":\"fault\"") != std::string::npos)
            sawFault = true;
    }
    EXPECT_LE(n, kDepth + 1);
    EXPECT_GE(n, 2u);
    EXPECT_TRUE(sawHeader);
    // The detection event is the last thing the run emits, so the
    // flight recorder must still hold it.
    EXPECT_TRUE(sawFault);
}

TEST(Probe, TraceNotDumpedOnCleanRun)
{
    ArmFrontEnd fe(countdownProgram(100));
    TraceObserver trace(16);
    std::ostringstream sink;
    trace.setSink(&sink);
    ObserverList list;
    list.add(&trace);
    RunResult rr = Machine(fe, CoreConfig{}).run(nullptr, &list);
    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_TRUE(sink.str().empty());
    EXPECT_EQ(trace.size(), 0u); // still cleared for the next run
}

TEST(Probe, ObserverSpecJoinsSimCacheKey)
{
    // Distinct instrumentation must be memoized separately: the
    // instrumented entry carries products the plain entry lacks.
    ProgramBuilder b("probe-keytest");
    b.zeros("result", 4);
    b.movi(R0, 77);
    Label loop = b.here();
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    ArmFrontEnd fe(b.finish());
    CoreConfig core;

    SimCache &cache = SimCache::instance();
    size_t before = cache.entries();

    SimResult plain = cache.simulate(fe, core);
    ASSERT_EQ(cache.entries(), before + 1);
    EXPECT_TRUE(plain.intervals.empty());

    ObserverSpec spec;
    spec.intervalInstructions = 50;
    SimResult instrumented = cache.simulate(fe, core, {}, 0, spec);
    EXPECT_EQ(cache.entries(), before + 2);
    EXPECT_FALSE(instrumented.intervals.empty());

    // Same spec again: a hit, same products.
    uint64_t hits = cache.hits();
    SimResult again = cache.simulate(fe, core, {}, 0, spec);
    EXPECT_EQ(cache.hits(), hits + 1);
    EXPECT_EQ(again.intervals.size(), instrumented.intervals.size());
    expectSameResult(plain.run, instrumented.run, "plain vs observed");
}

TEST(Probe, RunnerPropagatesIntervalSeries)
{
    ExperimentParams params;
    params.observers.intervalInstructions = 5'000;
    Runner runner(params);
    const BenchResult &b = runner.get("crc32");
    for (ConfigId id : kAllConfigs) {
        const ConfigResult &cfg = b.of(id);
        ASSERT_FALSE(cfg.intervals.empty()) << configName(id);
        uint64_t instrs = 0;
        for (const IntervalSample &s : cfg.intervals)
            instrs += s.instructions;
        EXPECT_EQ(instrs, cfg.run.instructions) << configName(id);
    }
}

TEST(Probe, TraceOnTrapWritesBoundedFileThroughSimCache)
{
    // End-to-end: the experiment engine's --trace-on-trap path. A
    // faulted run must leave a bounded JSONL file in traceDir.
    mibench::Workload w = mibench::findBench("crc32").build();
    ArmFrontEnd fe(w.program);
    CoreConfig core;
    core.icache.parity = true;

    ObserverSpec spec;
    spec.traceOnTrap = true;
    spec.traceDepth = 16;
    spec.traceDir = testing::TempDir();

    SimResult sim = SimCache::instance().simulate(
        fe, core, aggressiveFaults(), 0, spec);
    ASSERT_EQ(sim.run.outcome, RunOutcome::FaultDetected);
    ASSERT_FALSE(sim.tracePath.empty());

    std::ifstream is(sim.tracePath);
    ASSERT_TRUE(is.good()) << sim.tracePath;
    std::string line;
    size_t n = 0;
    while (std::getline(is, line)) {
        ++n;
        EXPECT_EQ(line.front(), '{');
    }
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, spec.traceDepth + 1);
    std::remove(sim.tracePath.c_str());
}

TEST(Probe, ZeroObserverListIsEquivalentToNull)
{
    ArmFrontEnd fe(countdownProgram(200));
    ObserverList empty;
    RunResult with_null = Machine(fe, CoreConfig{}).run();
    RunResult with_empty =
        Machine(fe, CoreConfig{}).run(nullptr, &empty);
    expectSameResult(with_null, with_empty, "null vs empty list");
}

} // namespace
} // namespace pfits
