/** @file Round-trip tests for decoder-configuration serialization. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/serialize.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

FitsIsa
isaFor(const char *bench)
{
    mibench::Workload w = mibench::findBench(bench).build();
    ProfileInfo profile = profileProgram(w.program);
    return synthesize(profile, SynthParams{}, bench);
}

TEST(Serialize, RoundTripPreservesStructure)
{
    FitsIsa isa = isaFor("crc32");
    std::string text = saveFitsIsa(isa);
    FitsIsa back = loadFitsIsa(text);

    EXPECT_EQ(back.appName, isa.appName);
    EXPECT_EQ(back.regBits, isa.regBits);
    EXPECT_EQ(back.scratchReg, isa.scratchReg);
    EXPECT_EQ(back.regUnmap, isa.regUnmap);
    ASSERT_EQ(back.slots.size(), isa.slots.size());
    for (size_t i = 0; i < isa.slots.size(); ++i) {
        EXPECT_EQ(back.slots[i].describe(), isa.slots[i].describe())
            << i;
        EXPECT_EQ(back.slots[i].opcode, isa.slots[i].opcode);
        EXPECT_EQ(back.slots[i].opcodeBits, isa.slots[i].opcodeBits);
    }
    EXPECT_EQ(back.opDict.size(), isa.opDict.size());
    EXPECT_EQ(back.listDict, isa.listDict);
    // And serializing again is a fixed point.
    EXPECT_EQ(saveFitsIsa(back), text);
}

TEST(Serialize, ReloadedConfigDecodesTheBinary)
{
    // The real contract: a FITS binary must execute identically under
    // a decoder configured from the serialized text.
    mibench::Workload w = mibench::findBench("crc32").build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsProgram prog = translateProgram(w.program, isa, profile);

    FitsProgram reloaded = prog;
    reloaded.isa = loadFitsIsa(saveFitsIsa(isa));

    FitsFrontEnd fe(std::move(reloaded));
    Machine machine(fe, CoreConfig{});
    RunResult rr = machine.run();
    ASSERT_FALSE(rr.io.emitted.empty());
    EXPECT_EQ(rr.io.emitted[0], w.expected);
}

TEST(Serialize, RoundTripsEverySuiteBenchmark)
{
    for (const auto &info : mibench::suite()) {
        FitsIsa isa = isaFor(info.name);
        FitsIsa back = loadFitsIsa(saveFitsIsa(isa));
        ASSERT_EQ(back.slots.size(), isa.slots.size()) << info.name;
        EXPECT_EQ(back.kraftSum(), isa.kraftSum()) << info.name;
        // The rebuilt decode table must agree everywhere.
        for (uint32_t w = 0; w < (1u << 16); w += 97)
            EXPECT_EQ(back.slotFor(static_cast<uint16_t>(w)),
                      isa.slotFor(static_cast<uint16_t>(w)))
                << info.name;
    }
}

TEST(Serialize, RejectsMalformedInput)
{
    EXPECT_THROW(loadFitsIsa(""), FatalError);
    EXPECT_THROW(loadFitsIsa("garbage v1 app x\n"), FatalError);
    FitsIsa isa = isaFor("gsm");
    std::string text = saveFitsIsa(isa);
    EXPECT_THROW(loadFitsIsa(text + "slot bogus\n"), FatalError);
    EXPECT_THROW(loadFitsIsa(text.substr(0, text.size() / 2)),
                 FatalError);
}

TEST(Serialize, ConfigBitsAreReported)
{
    FitsIsa small = isaFor("crc32");
    FitsIsa big = isaFor("jpeg.encode");
    uint64_t small_bits = decoderConfigBits(small);
    uint64_t big_bits = decoderConfigBits(big);
    EXPECT_GT(small_bits, 1000u);   // a real config, not a register
    EXPECT_LT(small_bits, 100000u); // but far below a cache's size
    EXPECT_GT(big_bits, small_bits * 0.5); // scales with slots/dicts
}

} // namespace
} // namespace pfits
