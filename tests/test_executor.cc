/** @file Semantics tests for the micro-op executor (the datapath). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/executor.hh"

namespace pfits
{
namespace
{

struct ExecFixture : public ::testing::Test
{
    CpuState state;
    Memory mem;
    IoSinks io;
    AddrCodec codec{0x8000, 2};
    ExecInfo info;

    void
    run(const MicroOp &uop, uint64_t index = 0)
    {
        execute(uop, index, codec, state, mem, io, info);
    }

    MicroOp
    alu(Op op, uint8_t rd, uint8_t rn, uint32_t imm, bool s = false)
    {
        MicroOp uop;
        uop.op = op;
        uop.rd = rd;
        uop.rn = rn;
        uop.op2Kind = Operand2Kind::IMM;
        uop.imm = imm;
        uop.setsFlags = s;
        return uop;
    }
};

TEST_F(ExecFixture, AddSubFlagSemantics)
{
    state.regs[R1] = 0xffffffffu;
    run(alu(Op::ADD, R0, R1, 1, true));
    EXPECT_EQ(state.regs[R0], 0u);
    EXPECT_TRUE(state.flags.z);
    EXPECT_TRUE(state.flags.c);  // unsigned carry out
    EXPECT_FALSE(state.flags.v);

    state.regs[R1] = 0x7fffffffu;
    run(alu(Op::ADD, R0, R1, 1, true));
    EXPECT_TRUE(state.flags.v); // signed overflow
    EXPECT_TRUE(state.flags.n);

    state.regs[R1] = 5;
    run(alu(Op::SUB, R0, R1, 3, true));
    EXPECT_EQ(state.regs[R0], 2u);
    EXPECT_TRUE(state.flags.c); // no borrow
    run(alu(Op::SUB, R0, R1, 9, true));
    EXPECT_FALSE(state.flags.c); // borrow
    EXPECT_TRUE(state.flags.n);
}

TEST_F(ExecFixture, AdcSbcUseCarry)
{
    state.regs[R1] = 10;
    state.flags.c = true;
    run(alu(Op::ADC, R0, R1, 5));
    EXPECT_EQ(state.regs[R0], 16u);
    state.flags.c = false;
    run(alu(Op::ADC, R0, R1, 5));
    EXPECT_EQ(state.regs[R0], 15u);

    state.flags.c = true; // no borrow pending
    run(alu(Op::SBC, R0, R1, 3));
    EXPECT_EQ(state.regs[R0], 7u);
    state.flags.c = false;
    run(alu(Op::SBC, R0, R1, 3));
    EXPECT_EQ(state.regs[R0], 6u);
}

TEST_F(ExecFixture, RsbReverses)
{
    state.regs[R1] = 3;
    run(alu(Op::RSB, R0, R1, 10));
    EXPECT_EQ(state.regs[R0], 7u);
}

TEST_F(ExecFixture, LogicalOpsPreserveCarry)
{
    state.flags.c = true;
    state.flags.v = true;
    state.regs[R1] = 0xf0;
    run(alu(Op::AND, R0, R1, 0x0f, true));
    EXPECT_EQ(state.regs[R0], 0u);
    EXPECT_TRUE(state.flags.z);
    EXPECT_TRUE(state.flags.c); // preserved (uARM simplification)
    EXPECT_TRUE(state.flags.v);

    run(alu(Op::ORR, R0, R1, 0x0f));
    EXPECT_EQ(state.regs[R0], 0xffu);
    run(alu(Op::EOR, R0, R1, 0xff));
    EXPECT_EQ(state.regs[R0], 0x0fu);
    run(alu(Op::BIC, R0, R1, 0x30));
    EXPECT_EQ(state.regs[R0], 0xc0u);
    run(alu(Op::MVN, R0, 0, 0));
    EXPECT_EQ(state.regs[R0], 0xffffffffu);
}

TEST_F(ExecFixture, ComparesSetFlagsOnly)
{
    state.regs[R0] = 0xdead;
    state.regs[R1] = 7;
    MicroOp cmp = alu(Op::CMP, R0, R1, 7, true);
    run(cmp);
    EXPECT_TRUE(state.flags.z);
    EXPECT_EQ(state.regs[R0], 0xdeadu); // rd untouched

    MicroOp tst = alu(Op::TST, R0, R1, 8, true);
    run(tst);
    EXPECT_TRUE(state.flags.z);
    run(alu(Op::CMN, R0, R1, 0xfffffff9u, true)); // 7 + (-7)
    EXPECT_TRUE(state.flags.z);
}

TEST_F(ExecFixture, ShifterForms)
{
    state.regs[R1] = 0x80000001u;
    state.regs[R2] = 4;

    MicroOp uop;
    uop.op = Op::MOV;
    uop.rd = R0;
    uop.rm = R1;
    uop.op2Kind = Operand2Kind::REG_SHIFT_IMM;
    uop.shiftType = ShiftType::LSR;
    uop.shiftAmount = 1;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0x40000000u);

    uop.shiftType = ShiftType::ASR;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0xc0000000u);

    uop.shiftType = ShiftType::ROR;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0xc0000000u);

    uop.op2Kind = Operand2Kind::REG_SHIFT_REG;
    uop.shiftType = ShiftType::LSL;
    uop.rs = R2;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0x10u);

    // Shift by >= 32 via register.
    state.regs[R2] = 32;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0u);
    uop.shiftType = ShiftType::ASR;
    run(uop);
    EXPECT_EQ(state.regs[R0], 0xffffffffu); // sign fill
}

TEST_F(ExecFixture, MultiplyFamily)
{
    state.regs[R1] = 7;
    state.regs[R2] = 6;
    state.regs[R3] = 100;

    MicroOp mul;
    mul.op = Op::MUL;
    mul.rd = R0;
    mul.rm = R1;
    mul.rs = R2;
    run(mul);
    EXPECT_EQ(state.regs[R0], 42u);
    EXPECT_GT(info.extraLatency, 0u);

    MicroOp mla = mul;
    mla.op = Op::MLA;
    mla.ra = R3;
    run(mla);
    EXPECT_EQ(state.regs[R0], 142u);

    MicroOp umull;
    umull.op = Op::UMULL;
    umull.ra = R4; // lo
    umull.rd = R5; // hi
    umull.rm = R1;
    umull.rs = R2;
    state.regs[R1] = 0xffffffffu;
    state.regs[R2] = 2;
    run(umull);
    EXPECT_EQ(state.regs[R4], 0xfffffffeu);
    EXPECT_EQ(state.regs[R5], 1u);

    MicroOp smull = umull;
    smull.op = Op::SMULL;
    state.regs[R1] = static_cast<uint32_t>(-3);
    state.regs[R2] = 4;
    run(smull);
    EXPECT_EQ(state.regs[R4], static_cast<uint32_t>(-12));
    EXPECT_EQ(state.regs[R5], 0xffffffffu);
}

TEST_F(ExecFixture, DivideAndSaturate)
{
    state.regs[R1] = static_cast<uint32_t>(-7);
    state.regs[R2] = 2;
    MicroOp sdiv;
    sdiv.op = Op::SDIV;
    sdiv.rd = R0;
    sdiv.rn = R1;
    sdiv.rm = R2;
    run(sdiv);
    EXPECT_EQ(state.regs[R0], static_cast<uint32_t>(-3)); // truncation

    state.regs[R2] = 0;
    run(sdiv);
    EXPECT_EQ(state.regs[R0], 0u); // divide by zero yields 0

    MicroOp udiv = sdiv;
    udiv.op = Op::UDIV;
    state.regs[R1] = 7;
    state.regs[R2] = 2;
    run(udiv);
    EXPECT_EQ(state.regs[R0], 3u);

    MicroOp qadd;
    qadd.op = Op::QADD;
    qadd.rd = R0;
    qadd.rn = R1;
    qadd.rm = R2;
    state.regs[R1] = 0x7fffffffu;
    state.regs[R2] = 10;
    run(qadd);
    EXPECT_EQ(state.regs[R0], 0x7fffffffu); // saturated

    MicroOp qsub = qadd;
    qsub.op = Op::QSUB;
    state.regs[R1] = 0x80000000u;
    run(qsub);
    EXPECT_EQ(state.regs[R0], 0x80000000u); // saturated low
}

TEST_F(ExecFixture, ClzCountsLeadingZeros)
{
    MicroOp clz;
    clz.op = Op::CLZ;
    clz.rd = R0;
    clz.rm = R1;
    state.regs[R1] = 0;
    run(clz);
    EXPECT_EQ(state.regs[R0], 32u);
    state.regs[R1] = 1;
    run(clz);
    EXPECT_EQ(state.regs[R0], 31u);
    state.regs[R1] = 0x80000000u;
    run(clz);
    EXPECT_EQ(state.regs[R0], 0u);
}

TEST_F(ExecFixture, MovwMovtCompose)
{
    MicroOp movw;
    movw.op = Op::MOVW;
    movw.rd = R0;
    movw.imm = 0x5678;
    run(movw);
    MicroOp movt = movw;
    movt.op = Op::MOVT;
    movt.imm = 0x1234;
    run(movt);
    EXPECT_EQ(state.regs[R0], 0x12345678u);
}

TEST_F(ExecFixture, LoadsAndStores)
{
    mem.write32(0x1000, 0xcafebabe);
    state.regs[R1] = 0x1000;

    MicroOp ldr;
    ldr.op = Op::LDR;
    ldr.rd = R0;
    ldr.rn = R1;
    ldr.memKind = MemOffsetKind::IMM;
    run(ldr);
    EXPECT_EQ(state.regs[R0], 0xcafebabeu);
    EXPECT_EQ(info.numMem, 1u);
    EXPECT_EQ(info.mem[0].addr, 0x1000u);
    EXPECT_FALSE(info.mem[0].write);

    MicroOp ldrb = ldr;
    ldrb.op = Op::LDRB;
    ldrb.memDisp = 1;
    run(ldrb);
    EXPECT_EQ(state.regs[R0], 0xbau);

    MicroOp ldrsb = ldr;
    ldrsb.op = Op::LDRSB;
    ldrsb.memDisp = 3;
    run(ldrsb);
    EXPECT_EQ(state.regs[R0], 0xffffffcau);

    MicroOp ldrsh = ldr;
    ldrsh.op = Op::LDRSH;
    ldrsh.memDisp = 2;
    run(ldrsh);
    EXPECT_EQ(state.regs[R0], 0xffffcafeu);

    state.regs[R2] = 0x11;
    MicroOp strb;
    strb.op = Op::STRB;
    strb.rd = R2;
    strb.rn = R1;
    strb.memKind = MemOffsetKind::IMM;
    strb.memDisp = 4;
    run(strb);
    EXPECT_EQ(mem.read8(0x1004), 0x11u);

    // Register offset with shift.
    state.regs[R3] = 4;
    MicroOp ldr_reg;
    ldr_reg.op = Op::LDR;
    ldr_reg.rd = R0;
    ldr_reg.rn = R1;
    ldr_reg.rm = R3;
    ldr_reg.memKind = MemOffsetKind::REG_SHIFT_IMM;
    ldr_reg.shiftType = ShiftType::LSL;
    ldr_reg.shiftAmount = 2;
    ldr_reg.memAdd = true;
    mem.write32(0x1010, 77);
    run(ldr_reg);
    EXPECT_EQ(state.regs[R0], 77u);
}

TEST_F(ExecFixture, PushPopRoundTrip)
{
    state.regs[SP] = 0x2000;
    state.regs[R4] = 44;
    state.regs[R5] = 55;
    state.regs[LR] = 0x8004;

    MicroOp push;
    push.op = Op::STM;
    push.rn = SP;
    push.regList = (1u << R4) | (1u << R5) | (1u << LR);
    run(push);
    EXPECT_EQ(state.regs[SP], 0x2000u - 12);
    EXPECT_EQ(info.numMem, 3u);

    state.regs[R4] = state.regs[R5] = state.regs[LR] = 0;
    MicroOp pop;
    pop.op = Op::LDM;
    pop.rn = SP;
    pop.regList = push.regList;
    run(pop);
    EXPECT_EQ(state.regs[R4], 44u);
    EXPECT_EQ(state.regs[R5], 55u);
    EXPECT_EQ(state.regs[LR], 0x8004u);
    EXPECT_EQ(state.regs[SP], 0x2000u);
}

TEST_F(ExecFixture, BranchesAndCalls)
{
    MicroOp b;
    b.op = Op::B;
    b.branchOffset = -3;
    run(b, 10);
    EXPECT_TRUE(info.branchTaken);
    EXPECT_EQ(info.nextIndex, 7u);

    MicroOp bl;
    bl.op = Op::BL;
    bl.branchOffset = 5;
    run(bl, 10);
    EXPECT_EQ(info.nextIndex, 15u);
    EXPECT_EQ(state.regs[LR], codec.addrOf(11));

    MicroOp ret;
    ret.op = Op::RET;
    run(ret, 20);
    EXPECT_EQ(info.nextIndex, 11u);

    state.regs[LR] = 0x8001; // unaligned
    EXPECT_THROW(run(ret, 20), FatalError);
}

TEST_F(ExecFixture, ConditionalAnnulment)
{
    state.flags.z = false;
    MicroOp uop = alu(Op::ADD, R0, R0, 1);
    uop.cond = Cond::EQ;
    state.regs[R0] = 5;
    run(uop);
    EXPECT_FALSE(info.executed);
    EXPECT_EQ(state.regs[R0], 5u);
    EXPECT_EQ(info.nextIndex, 1u);
}

TEST_F(ExecFixture, SwiSideEffects)
{
    MicroOp swi;
    swi.op = Op::SWI;
    swi.imm = SWI_PUTC;
    state.regs[R0] = 'h';
    run(swi);
    state.regs[R0] = 'i';
    run(swi);
    EXPECT_EQ(io.console, "hi");

    swi.imm = SWI_EMIT_WORD;
    state.regs[R0] = 0x1234;
    run(swi);
    ASSERT_EQ(io.emitted.size(), 1u);
    EXPECT_EQ(io.emitted[0], 0x1234u);

    swi.imm = SWI_EXIT;
    run(swi);
    EXPECT_TRUE(state.halted);

    swi.imm = 99;
    state.halted = false;
    EXPECT_THROW(run(swi), FatalError);
}

TEST_F(ExecFixture, MisalignedAccessFaults)
{
    state.regs[R1] = 0x1001;
    MicroOp ldr;
    ldr.op = Op::LDR;
    ldr.rd = R0;
    ldr.rn = R1;
    ldr.memKind = MemOffsetKind::IMM;
    EXPECT_THROW(run(ldr), FatalError);
}

TEST_F(ExecFixture, MemoryPagesAreZeroInitialized)
{
    EXPECT_EQ(mem.read32(0xdeadbe00u), 0u);
    mem.write16(0x4000, 0xabcd);
    EXPECT_EQ(mem.read16(0x4000), 0xabcdu);
    EXPECT_EQ(mem.read8(0x4001), 0xabu);
}

TEST(AddrCodec, IndexOfGuardsUnderflow)
{
    AddrCodec codec{0x8000, 2};
    EXPECT_EQ(codec.indexOf(0x8000), 0u);
    EXPECT_EQ(codec.indexOf(0x8008), 2u);
    // An address below the code base must come back as the sentinel,
    // not wrap to a huge index that masquerades as in-range.
    EXPECT_EQ(codec.indexOf(0x7ffc), AddrCodec::kBadIndex);
    EXPECT_EQ(codec.indexOf(0), AddrCodec::kBadIndex);

    AddrCodec fits{0x100, 1};
    EXPECT_EQ(fits.indexOf(0x102), 1u);
    EXPECT_EQ(fits.indexOf(0xff), AddrCodec::kBadIndex);
}

TEST_F(ExecFixture, RetBelowCodeBaseTraps)
{
    MicroOp uop;
    uop.op = Op::RET;
    uop.cond = Cond::AL;
    state.regs[LR] = codec.base - 4;
    EXPECT_THROW(run(uop), TrapError);
}

} // namespace
} // namespace pfits
