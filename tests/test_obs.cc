/**
 * @file
 * Observability layer tests: JSON writer/parser round-trips, the
 * metric registry (including concurrent updates from a 4-worker pool),
 * run-manifest schema validation, suite aggregation, and the
 * regression-diff policy (value tolerance, wall-time threshold).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "exp/parallel.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"

namespace
{

using namespace pfits;

// --- JSON ----------------------------------------------------------------

TEST(Json, WriterParserRoundTrip)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("name", "quote\" slash\\ tab\t");
    w.field("pi", 3.25);
    w.field("neg", -12);
    w.field("yes", true);
    w.key("hash");
    w.hexValue(0xdeadbeefcafef00dull);
    w.key("list");
    w.beginArray();
    w.value(1);
    w.nullValue();
    w.value("two");
    w.endArray();
    w.endObject();
    ASSERT_TRUE(w.done());

    JsonValue doc = JsonValue::parse(os.str());
    EXPECT_EQ(doc.get("name").asString(), "quote\" slash\\ tab\t");
    EXPECT_DOUBLE_EQ(doc.get("pi").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(doc.get("neg").asNumber(), -12.0);
    EXPECT_TRUE(doc.get("yes").asBool());
    EXPECT_EQ(doc.get("hash").asString(), "0xdeadbeefcafef00d");
    ASSERT_EQ(doc.get("list").asArray().size(), 3u);
    EXPECT_TRUE(doc.get("list").asArray()[1].isNull());
    EXPECT_TRUE(doc.get("absent").isNull());
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse("{"), FatalError);
    EXPECT_THROW(JsonValue::parse("[1,]"), FatalError);
    EXPECT_THROW(JsonValue::parse("{} trailing"), FatalError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), FatalError);
    EXPECT_THROW(JsonValue::parse("nope"), FatalError);
}

TEST(Json, ParserHandlesEscapesAndUnicode)
{
    JsonValue doc = JsonValue::parse(
        "{\"s\": \"a\\n\\\"b\\\"\\u0041\\u00e9\"}");
    EXPECT_EQ(doc.get("s").asString(), "a\n\"b\"A\xc3\xa9");
}

TEST(Json, BuildersProduceParseableDocuments)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("n", JsonValue::makeNumber(7));
    JsonValue arr = JsonValue::makeArray();
    arr.push(JsonValue::makeString("x"));
    arr.push(JsonValue::makeBool(false));
    doc.set("a", std::move(arr));

    std::ostringstream os;
    writeJsonDocument(os, doc);
    JsonValue back = JsonValue::parse(os.str());
    EXPECT_DOUBLE_EQ(back.get("n").asNumber(), 7.0);
    ASSERT_EQ(back.get("a").asArray().size(), 2u);
    EXPECT_EQ(back.get("a").asArray()[0].asString(), "x");
}

// --- metrics -------------------------------------------------------------

TEST(Metrics, RegistryBasics)
{
    MetricRegistry reg;
    reg.counter("c").add(3);
    reg.counter("c").add();
    EXPECT_EQ(reg.counter("c").value(), 4u);

    reg.gauge("g").set(5);
    reg.gauge("g").set(2);
    EXPECT_EQ(reg.gauge("g").value(), 2);
    EXPECT_EQ(reg.gauge("g").maxValue(), 5);

    MetricHistogram &h = reg.histogram("h", 0.0, 10.0, 5);
    h.sample(1.0);
    h.sample(9.5);
    h.sample(-1.0); // underflow
    h.sample(25.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 25.0);

    EXPECT_EQ(reg.size(), 3u);
    // A name holds one kind only.
    EXPECT_THROW(reg.gauge("c"), FatalError);
    EXPECT_THROW(reg.counter("h"), FatalError);
}

TEST(Metrics, HistogramPercentilesInterpolateWithinBuckets)
{
    MetricHistogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0) << "empty histogram";

    // One sample at each integer in [0, 100): the quantile of rank r
    // lands at the upper edge of its interpolated position.
    for (int v = 0; v < 100; ++v)
        h.sample(static_cast<double>(v));
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 99.0) << "p100 is the max";

    // Underflow resolves to the observed min; interpolation above a
    // sparse bucket clamps to the observed max.
    MetricHistogram u(0.0, 10.0, 5);
    u.sample(-5.0);
    u.sample(-4.0);
    u.sample(-3.0);
    u.sample(5.0);
    EXPECT_DOUBLE_EQ(u.percentile(0.50), -5.0);
    EXPECT_DOUBLE_EQ(u.percentile(0.99), 5.0);

    // Everything above the range: the overflow bin answers max (all
    // that is known about those samples is "at least hi").
    MetricHistogram o(0.0, 1.0, 2);
    o.sample(40.0);
    o.sample(60.0);
    EXPECT_DOUBLE_EQ(o.percentile(0.5), 60.0);
    EXPECT_DOUBLE_EQ(o.percentile(0.99), 60.0);
}

TEST(Metrics, HistogramJsonCarriesPercentiles)
{
    MetricRegistry reg;
    MetricHistogram &h = reg.histogram("lat", 0.0, 100.0, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(static_cast<double>(v));

    std::ostringstream os;
    JsonWriter w(os);
    reg.writeJson(w);
    JsonValue doc = JsonValue::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.get("lat").get("p50").asNumber(), 50.0);
    EXPECT_DOUBLE_EQ(doc.get("lat").get("p95").asNumber(), 95.0);
    EXPECT_DOUBLE_EQ(doc.get("lat").get("p99").asNumber(), 99.0);
}

TEST(Metrics, WriteJsonIsSortedAndParseable)
{
    MetricRegistry reg;
    reg.counter("z.count").add(2);
    reg.gauge("a.depth").set(7);
    reg.histogram("m.lat", 0.0, 100.0, 4).sample(12.0);

    std::ostringstream os;
    JsonWriter w(os);
    reg.writeJson(w);
    JsonValue doc = JsonValue::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.get("z.count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(doc.get("a.depth").get("value").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(doc.get("m.lat").get("count").asNumber(), 1.0);
    // Keys are emitted sorted regardless of registration order.
    const auto &members = doc.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "a.depth");
    EXPECT_EQ(members[2].first, "z.count");
}

TEST(Metrics, ConcurrentIncrementsFromFourWorkers)
{
    // The satellite case: a PFITS_JOBS=4-style pool hammering one
    // registry. Every add/sample must land exactly once.
    MetricRegistry reg;
    ThreadPool pool(4);
    constexpr size_t kJobs = 4000;
    pool.run(kJobs, [&](size_t i) {
        reg.counter("work.count").add();
        reg.gauge("work.level").add(1);
        reg.histogram("work.ms", 0.0, 100.0, 10)
            .sample(static_cast<double>(i % 100));
    });
    EXPECT_EQ(reg.counter("work.count").value(), kJobs);
    EXPECT_EQ(reg.gauge("work.level").value(),
              static_cast<int64_t>(kJobs));
    EXPECT_EQ(reg.histogram("work.ms", 0.0, 100.0, 10).count(), kJobs);
    uint64_t bucket_sum = 0;
    for (uint64_t c :
         reg.histogram("work.ms", 0.0, 100.0, 10).bucketSnapshot())
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, kJobs);
}

TEST(Metrics, InstallPublishesEngineSink)
{
    ASSERT_EQ(MetricRegistry::current(), nullptr)
        << "another test leaked an installed registry";
    MetricRegistry reg;
    MetricRegistry *prev = MetricRegistry::install(&reg);
    EXPECT_EQ(prev, nullptr);
    EXPECT_EQ(MetricRegistry::current(), &reg);

    // An instrumented pool reports into the installed registry.
    ThreadPool pool(2);
    pool.run(8, [](size_t) {});
    EXPECT_EQ(reg.counter("pool.jobs").value(), 8u);
    EXPECT_EQ(reg.counter("pool.batches").value(), 1u);
    EXPECT_EQ(reg.gauge("pool.queue_depth").maxValue(), 8);
    EXPECT_EQ(reg.gauge("pool.queue_depth").value(), 0);

    MetricRegistry::install(nullptr);
    EXPECT_EQ(MetricRegistry::current(), nullptr);
}

TEST(Metrics, ScopedTimerNoopWithoutRegistry)
{
    ASSERT_EQ(MetricRegistry::current(), nullptr);
    {
        ScopedTimerMs hist("t.hist", 0.0, 10.0, 2);
        ScopedTimerMs count("t.count");
    }
    // Nothing to observe — the point is it must not crash or allocate
    // instruments anywhere.
    SUCCEED();
}

// --- manifest + validation ----------------------------------------------

JsonValue
makeManifest(const std::string &tool, const std::string &cell,
             double wall_ms)
{
    Table t("Result");
    t.setHeader({"k", "v"});
    t.addRow({"row", cell});

    MetricRegistry reg;
    reg.counter("simcache.misses").add(2);
    reg.counter("simcache.hits").add(5);

    RunManifest m;
    m.tool = tool;
    m.note = "unit";
    m.params.recorded = true;
    m.params.jobs = 4;
    m.sims.push_back({0x1111, 0x2222, 0, 0});
    m.tables.push_back(&t);
    m.metrics = &reg;
    m.wallMs = wall_ms;
    m.cpuMs = wall_ms * 2;

    std::ostringstream os;
    m.write(os);
    return JsonValue::parse(os.str());
}

TEST(Manifest, WriteValidatesAgainstSchema)
{
    JsonValue doc = makeManifest("unit_bench", "1.5", 100.0);
    EXPECT_EQ(validateDocument(doc), "");
    EXPECT_EQ(doc.get("schema").asString(), kManifestSchema);
    EXPECT_EQ(doc.get("tool").asString(), "unit_bench");
    EXPECT_EQ(doc.get("sims").asArray().size(), 1u);
    EXPECT_EQ(
        doc.get("sims").asArray()[0].get("program").asString(),
        "0x0000000000001111");
    EXPECT_DOUBLE_EQ(
        doc.get("metrics").get("simcache.hits").asNumber(), 5.0);
}

TEST(Manifest, ValidatorFlagsBrokenDocuments)
{
    EXPECT_NE(validateDocument(JsonValue::parse("{}")), "");
    EXPECT_NE(validateDocument(JsonValue::parse(
                  "{\"schema\": \"pfits-manifest-v1\"}")),
              "");
    EXPECT_NE(validateDocument(JsonValue::parse(
                  "{\"schema\": \"what-is-this\"}")),
              "");
    // A ragged table row (width != header) must be caught.
    JsonValue doc = makeManifest("unit_bench", "1", 1.0);
    JsonValue ragged_table = JsonValue::makeObject();
    ragged_table.set("title", JsonValue::makeString("Ragged"));
    JsonValue header = JsonValue::makeArray();
    header.push(JsonValue::makeString("k"));
    header.push(JsonValue::makeString("v"));
    ragged_table.set("header", std::move(header));
    JsonValue rows = JsonValue::makeArray();
    JsonValue short_row = JsonValue::makeArray();
    short_row.push(JsonValue::makeString("only-one-cell"));
    rows.push(std::move(short_row));
    ragged_table.set("rows", std::move(rows));
    JsonValue tables = JsonValue::makeArray();
    tables.push(std::move(ragged_table));
    doc.set("tables", std::move(tables));
    EXPECT_NE(validateDocument(doc), "");
}

// --- aggregation + diff --------------------------------------------------

JsonValue
makeSuite(const std::string &cell, double wall_ms,
          const std::vector<std::string> &tools = {"bench_a"})
{
    std::vector<JsonValue> manifests;
    for (const std::string &tool : tools)
        manifests.push_back(makeManifest(tool, cell, wall_ms));
    return aggregateManifests(manifests);
}

TEST(Report, AggregateBuildsValidSuite)
{
    JsonValue suite = makeSuite("1.5", 100.0, {"b_two", "a_one"});
    EXPECT_EQ(validateDocument(suite), "");
    EXPECT_EQ(suite.get("schema").asString(), kSuiteSchema);
    const auto &benches = suite.get("benches").asArray();
    ASSERT_EQ(benches.size(), 2u);
    // Sorted by tool name for line-stable diffs.
    EXPECT_EQ(benches[0].get("tool").asString(), "a_one");
    EXPECT_EQ(benches[1].get("tool").asString(), "b_two");
    EXPECT_DOUBLE_EQ(suite.get("totals").get("wall_ms").asNumber(),
                     200.0);
    EXPECT_DOUBLE_EQ(suite.get("totals").get("memo_hits").asNumber(),
                     10.0);
    EXPECT_DOUBLE_EQ(suite.get("totals").get("unique_sims").asNumber(),
                     2.0);
}

TEST(Report, DiffIdenticalSuitesIsClean)
{
    JsonValue base = makeSuite("1.500", 100.0);
    JsonValue fresh = makeSuite("1.500", 100.0);
    DiffResult r = diffSuites(base, fresh, {});
    EXPECT_TRUE(r.findings.empty());
    EXPECT_FALSE(r.regression());
    EXPECT_EQ(r.benchesCompared, 1u);
    EXPECT_EQ(r.cellsCompared, 1u);
}

TEST(Report, DiffFlagsValueDrift)
{
    JsonValue base = makeSuite("1.500", 100.0);
    JsonValue fresh = makeSuite("1.800", 100.0);
    DiffResult r = diffSuites(base, fresh, {});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, DiffFinding::Kind::ValueDrift);
    EXPECT_TRUE(r.regression());
}

TEST(Report, DiffValueToleranceAbsorbsSmallDrift)
{
    JsonValue base = makeSuite("1.5000000", 100.0);
    JsonValue fresh = makeSuite("1.5000001", 100.0);
    DiffOptions loose;
    loose.valueTol = 1e-4;
    EXPECT_FALSE(diffSuites(base, fresh, loose).regression());
    DiffOptions tight;
    tight.valueTol = 1e-9;
    EXPECT_TRUE(diffSuites(base, fresh, tight).regression());
}

TEST(Report, DiffFlagsNonNumericCellChange)
{
    JsonValue base = makeSuite("ok", 100.0);
    JsonValue fresh = makeSuite("FAILED", 100.0);
    DiffResult r = diffSuites(base, fresh, {});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, DiffFinding::Kind::CellChanged);
    EXPECT_TRUE(r.regression());
}

TEST(Report, DiffFlagsWallTimeRegressionBeyondThreshold)
{
    // +100% with a >10ms delta: flagged on the bench and the totals.
    JsonValue base = makeSuite("1.5", 100.0);
    JsonValue fresh = makeSuite("1.5", 200.0);
    DiffResult r = diffSuites(base, fresh, {});
    ASSERT_FALSE(r.findings.empty());
    for (const DiffFinding &f : r.findings)
        EXPECT_EQ(f.kind, DiffFinding::Kind::TimeRegression);
    EXPECT_TRUE(r.regression());

    // +12% is inside the 15% threshold.
    JsonValue near = makeSuite("1.5", 112.0);
    EXPECT_FALSE(diffSuites(base, near, {}).regression());

    // +16% crosses it (and the 10ms floor).
    JsonValue over = makeSuite("1.5", 116.0);
    EXPECT_TRUE(diffSuites(base, over, {}).regression());

    // A huge relative jump under the absolute floor stays quiet:
    // micro-bench scheduler noise.
    JsonValue tiny_base = makeSuite("1.5", 4.0);
    JsonValue tiny_fresh = makeSuite("1.5", 8.0);
    EXPECT_FALSE(diffSuites(tiny_base, tiny_fresh, {}).regression());

    // --ignore-time: cross-machine baseline comparison.
    DiffOptions no_time;
    no_time.ignoreTime = true;
    EXPECT_FALSE(diffSuites(base, fresh, no_time).regression());
}

TEST(Report, DiffBenchPresenceRules)
{
    JsonValue base = makeSuite("1.5", 100.0, {"bench_a"});
    JsonValue fresh = makeSuite("1.5", 100.0, {"bench_a", "bench_b"});
    // ignoreTime: a grown suite legitimately takes longer in total;
    // presence rules are what this test pins down.
    DiffOptions opts;
    opts.ignoreTime = true;
    DiffResult grown = diffSuites(base, fresh, opts);
    ASSERT_EQ(grown.findings.size(), 1u);
    EXPECT_EQ(grown.findings[0].kind, DiffFinding::Kind::BenchAdded);
    // A new bench is informational, not a regression.
    EXPECT_FALSE(grown.regression());

    DiffResult shrunk = diffSuites(fresh, base, opts);
    ASSERT_EQ(shrunk.findings.size(), 1u);
    EXPECT_EQ(shrunk.findings[0].kind,
              DiffFinding::Kind::BenchMissing);
    EXPECT_TRUE(shrunk.regression());
}

/** Copy @p suite with every bench's metrics object replaced. */
JsonValue
withMetrics(const JsonValue &suite, const std::string &metrics_json)
{
    JsonValue out = suite;
    JsonValue benches = JsonValue::makeArray();
    for (const JsonValue &b : suite.get("benches").asArray()) {
        JsonValue nb = b;
        nb.set("metrics", JsonValue::parse(metrics_json));
        benches.push(std::move(nb));
    }
    out.set("benches", std::move(benches));
    return out;
}

TEST(Report, DiffMetricKeyPresenceRules)
{
    JsonValue suite = makeSuite("1.5", 100.0);
    JsonValue base = withMetrics(
        suite, "{\"simcache.hits\": 5,"
               " \"pool.queue_depth\": {\"value\": 0, \"max\": 4},"
               " \"pool.worker.0.busy_us\": 10}");

    // New telemetry (a key the baseline predates) is informational:
    // bench_regress.sh against an older baseline must stay green.
    JsonValue added = withMetrics(
        suite, "{\"simcache.hits\": 7, \"brand.new.counter\": 1,"
               " \"pool.queue_depth\": {\"value\": 2, \"max\": 9},"
               " \"pool.worker.0.busy_us\": 99}");
    DiffResult r = diffSuites(base, added, {});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, DiffFinding::Kind::MetricAdded);
    EXPECT_FALSE(r.regression())
        << "added metric keys must never gate";

    // A key that disappeared is lost instrumentation and gates.
    JsonValue removed = withMetrics(
        suite, "{\"pool.queue_depth\": {\"value\": 0, \"max\": 4},"
               " \"pool.worker.0.busy_us\": 10}");
    r = diffSuites(base, removed, {});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, DiffFinding::Kind::MetricMissing);
    EXPECT_TRUE(r.regression());

    // A kind flip (counter became a histogram) gates too.
    JsonValue flipped = withMetrics(
        suite, "{\"simcache.hits\": {\"count\": 1, \"buckets\": [1]},"
               " \"pool.queue_depth\": {\"value\": 0, \"max\": 4},"
               " \"pool.worker.0.busy_us\": 10}");
    r = diffSuites(base, flipped, {});
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind,
              DiffFinding::Kind::MetricKindChanged);
    EXPECT_TRUE(r.regression());

    // Per-worker keys are shaped by --jobs on the producing machine;
    // their coming and going is not a finding in either direction.
    JsonValue more_workers = withMetrics(
        suite, "{\"simcache.hits\": 5,"
               " \"pool.queue_depth\": {\"value\": 0, \"max\": 4},"
               " \"pool.worker.0.busy_us\": 10,"
               " \"pool.worker.1.busy_us\": 11,"
               " \"pool.worker.2.busy_us\": 12}");
    EXPECT_TRUE(diffSuites(base, more_workers, {}).findings.empty());
    EXPECT_TRUE(diffSuites(more_workers, base, {}).findings.empty());

    // --ignore-metrics turns the whole key-set comparison off: diffs
    // across deployment modes (svc_warm_check's daemon-warm vs local
    // runs) compare result tables only.
    DiffOptions ignore;
    ignore.ignoreMetrics = true;
    EXPECT_TRUE(diffSuites(base, removed, ignore).findings.empty());
    EXPECT_TRUE(diffSuites(base, flipped, ignore).findings.empty());
}

TEST(Report, PrintDiffReportVerdictLines)
{
    JsonValue base = makeSuite("1.5", 100.0);
    JsonValue drift = makeSuite("9.9", 100.0);

    std::ostringstream clean;
    printDiffReport(clean, diffSuites(base, base, {}), {});
    EXPECT_NE(clean.str().find("OK: no drift"), std::string::npos);

    std::ostringstream bad;
    printDiffReport(bad, diffSuites(base, drift, {}), {});
    EXPECT_NE(bad.str().find("REGRESSION"), std::string::npos);
    EXPECT_NE(bad.str().find("value-drift"), std::string::npos);
}

} // namespace
