/** @file Tests for the extension features: the CodePack-like
 *  compression baseline and the fetch-packing front-end mode. */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"
#include "thumb/codepack.hh"

namespace pfits
{
namespace
{

TEST(Codepack, RepetitiveCodeCompressesHard)
{
    ProgramBuilder b("rep");
    for (int i = 0; i < 500; ++i)
        b.addi(R0, R0, 1); // one distinct instruction word
    b.exit();
    CodepackStats stats = codepackEstimate(b.finish());
    EXPECT_EQ(stats.armInstructions, 501u);
    // Two hot halves -> ~12 bits per instruction vs 32.
    EXPECT_LT(stats.ratio(), 0.45);
    EXPECT_EQ(stats.escapes, 0u);
}

TEST(Codepack, HighEntropyCodeEscapes)
{
    // Many distinct low halves (immediates) overflow a tiny dictionary.
    ProgramBuilder b("entropy");
    for (uint32_t i = 0; i < 600; ++i)
        b.movi(R0, 0x10000u + i * 7919u); // movw+movt, varied halves
    b.exit();
    CodepackStats stats = codepackEstimate(b.finish(), 64);
    EXPECT_GT(stats.escapes, 0u);
    EXPECT_GT(stats.ratio(), 0.45);
    EXPECT_LE(stats.ratio(), 1.0);
}

TEST(Codepack, DictionarySizeMonotonicity)
{
    Program prog = mibench::buildCrc32().program;
    double prev = 2.0;
    for (unsigned entries : {16u, 64u, 256u, 1024u}) {
        CodepackStats stats = codepackEstimate(prog, entries);
        EXPECT_LE(stats.ratio(), prev + 1e-9) << entries;
        prev = stats.ratio();
    }
}

TEST(Codepack, SuiteRatioInCodepackRange)
{
    // Kadri et al. report CodePack ratios around 55-65%; our estimator
    // should land in that neighbourhood on real kernels.
    double sum = 0;
    size_t n = 0;
    for (const auto &info : mibench::suite()) {
        CodepackStats stats = codepackEstimate(info.build().program);
        EXPECT_GT(stats.ratio(), 0.25) << info.name;
        EXPECT_LT(stats.ratio(), 0.85) << info.name;
        sum += stats.ratio();
        ++n;
    }
    EXPECT_NEAR(sum / static_cast<double>(n), 0.60, 0.20);
}

TEST(PackedFetch, HalvesFitsAccessesAndPreservesSemantics)
{
    mibench::Workload w = mibench::findBench("crc32").build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, "crc32");
    FitsFrontEnd fe(translateProgram(w.program, isa, profile));

    CoreConfig plain;
    CoreConfig packed;
    packed.packedFetch = true;

    RunResult r1 = Machine(fe, plain).run();
    RunResult r2 = Machine(fe, packed).run();
    EXPECT_EQ(r1.io.emitted, r2.io.emitted);
    EXPECT_EQ(r1.instructions, r2.instructions);
    double ratio = static_cast<double>(r2.icache.accesses()) /
                   static_cast<double>(r1.icache.accesses());
    EXPECT_GT(ratio, 0.45);
    EXPECT_LT(ratio, 0.62); // ~half, plus branch-redirect fetches
}

TEST(PackedFetch, NoEffectOnArmStreams)
{
    mibench::Workload w = mibench::findBench("crc32").build();
    ArmFrontEnd fe(w.program);
    CoreConfig plain;
    CoreConfig packed;
    packed.packedFetch = true;
    RunResult r1 = Machine(fe, plain).run();
    RunResult r2 = Machine(fe, packed).run();
    // Every 32-bit instruction is its own word: access counts match.
    EXPECT_EQ(r1.icache.accesses(), r2.icache.accesses());
    EXPECT_EQ(r1.cycles, r2.cycles);
}

} // namespace
} // namespace pfits
