/** @file Integration tests asserting the paper's qualitative result
 *  shapes over the full four-configuration experiment. These are the
 *  claims DESIGN.md §4 commits to reproducing; EXPERIMENTS.md records
 *  the measured numbers. A shared Runner memoizes the simulations. */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/figures.hh"

namespace pfits
{
namespace
{

Runner &
runner()
{
    static Runner shared;
    return shared;
}

double
suiteAvg(double (*fn)(const BenchResult &))
{
    double sum = 0;
    auto results = runner().all();
    for (const BenchResult *b : results)
        sum += fn(*b);
    return sum / static_cast<double>(results.size());
}

using C = CachePowerBreakdown::Component;

TEST(Experiment, ConfigNamesAndCaches)
{
    EXPECT_STREQ(configName(ConfigId::ARM16), "ARM16");
    EXPECT_STREQ(configName(ConfigId::FITS8), "FITS8");
    EXPECT_EQ(runner().coreConfig(ConfigId::ARM16).icache.sizeBytes,
              16u * 1024);
    EXPECT_EQ(runner().coreConfig(ConfigId::FITS8).icache.sizeBytes,
              8u * 1024);
}

TEST(Experiment, Fig3StaticMappingHigh)
{
    double avg = suiteAvg([](const BenchResult &b) {
        return b.mapping.staticRate();
    });
    EXPECT_GT(avg, 0.92); // paper: ~96%
    EXPECT_LE(avg, 1.0);
}

TEST(Experiment, Fig4DynamicMappingHigherThanStatic)
{
    double stat = suiteAvg([](const BenchResult &b) {
        return b.mapping.staticRate();
    });
    double dyn = suiteAvg([](const BenchResult &b) {
        return b.mapping.dynRate();
    });
    EXPECT_GT(dyn, 0.94); // paper: ~98%
    EXPECT_GT(dyn, stat); // hot code maps better than cold code
}

TEST(Experiment, Fig5CodeSizeOrdering)
{
    // FITS ~53% of ARM, THUMB in between (paper: 67%).
    double fits = suiteAvg([](const BenchResult &b) {
        return static_cast<double>(b.fitsBytes) / b.armBytes;
    });
    double thumb = suiteAvg([](const BenchResult &b) {
        return static_cast<double>(b.thumbBytes) / b.armBytes;
    });
    EXPECT_GT(fits, 0.45);
    EXPECT_LT(fits, 0.60);
    EXPECT_GT(thumb, fits + 0.10);
    EXPECT_LT(thumb, 0.90);
}

TEST(Experiment, Fig6BreakdownShape)
{
    // Internal dominates; switching substantial; leakage small.
    for (const BenchResult *b : runner().all()) {
        const CachePowerBreakdown &p = b->of(ConfigId::ARM16).icache;
        EXPECT_GT(p.internalShare(), 0.45) << b->name;
        EXPECT_GT(p.switchingShare(), 0.15) << b->name;
        EXPECT_LT(p.leakageShare(), 0.15) << b->name;
    }
    // Same-size FITS shifts share from switching toward internal.
    for (const BenchResult *b : runner().all()) {
        EXPECT_LT(b->of(ConfigId::FITS16).icache.switchingShare(),
                  b->of(ConfigId::ARM16).icache.switchingShare())
            << b->name;
    }
}

TEST(Experiment, Fig7SwitchingSavings)
{
    double fits16 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS16, C::SWITCHING);
    });
    double arm8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::ARM8, C::SWITCHING);
    });
    EXPECT_GT(fits16, 0.40); // paper: ~50%
    EXPECT_LT(fits16, 0.55);
    EXPECT_LT(arm8, 0.10); // paper: "virtually none"
    EXPECT_GT(arm8, -0.25);
}

TEST(Experiment, Fig8InternalSavings)
{
    double fits16 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS16, C::INTERNAL);
    });
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS8, C::INTERNAL);
    });
    EXPECT_NEAR(fits16, 0.0, 0.10); // paper: same-size cache ~0
    EXPECT_GT(fits8, 0.35);         // paper: ~44%
    EXPECT_LT(fits8, 0.50);
}

TEST(Experiment, Fig9LeakageSavings)
{
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS8, C::LEAKAGE);
    });
    double arm8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::ARM8, C::LEAKAGE);
    });
    EXPECT_GT(fits8, 0.05); // paper: ~15%
    EXPECT_LT(fits8, 0.20);
    // ARM8's saving is eroded (or reversed) by its longer runtime.
    EXPECT_LT(arm8, fits8);
}

TEST(Experiment, Fig10PeakSavingsMultiplicative)
{
    double fits16 = suiteAvg([](const BenchResult &b) {
        return b.peakSaving(ConfigId::FITS16);
    });
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.peakSaving(ConfigId::FITS8);
    });
    double arm8 = suiteAvg([](const BenchResult &b) {
        return b.peakSaving(ConfigId::ARM8);
    });
    EXPECT_GT(fits16, 0.30); // paper: 46%
    EXPECT_GT(arm8, 0.15);   // paper: 31%
    EXPECT_GT(fits8, fits16);
    EXPECT_GT(fits8, arm8);
    // Width and size effects compose multiplicatively.
    EXPECT_NEAR(fits8, 1 - (1 - fits16) * (1 - arm8), 0.05);
}

TEST(Experiment, Fig11TotalCacheOrdering)
{
    double fits16 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS16, C::TOTAL);
    });
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::FITS8, C::TOTAL);
    });
    double arm8 = suiteAvg([](const BenchResult &b) {
        return b.saving(ConfigId::ARM8, C::TOTAL);
    });
    // Paper: FITS8 (47%) > ARM8 (27%) > FITS16 (18%).
    EXPECT_GT(fits8, arm8);
    EXPECT_GT(arm8, fits16);
    EXPECT_GT(fits8, 0.35);
    EXPECT_GT(fits16, 0.10);
}

TEST(Experiment, Fig12ChipOrdering)
{
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.chipSaving(ConfigId::FITS8);
    });
    double fits16 = suiteAvg([](const BenchResult &b) {
        return b.chipSaving(ConfigId::FITS16);
    });
    // Paper: FITS8 ~15% clearly ahead; FITS16/ARM8 small.
    EXPECT_GT(fits8, 0.08);
    EXPECT_GT(fits8, fits16 + 0.05);
    EXPECT_GT(fits16, 0.0);
}

TEST(Experiment, Fig13MissRates)
{
    // The paper's headline: half-sized FITS caches miss no more than
    // the full-sized ARM cache; ARM8 pays heavily.
    double arm16 = 0, arm8 = 0, fits8 = 0;
    auto results = runner().all();
    for (const BenchResult *b : results) {
        arm16 += b->of(ConfigId::ARM16).run.icache.missesPerMillion();
        arm8 += b->of(ConfigId::ARM8).run.icache.missesPerMillion();
        fits8 += b->of(ConfigId::FITS8).run.icache.missesPerMillion();
    }
    EXPECT_LE(fits8, arm16 * 1.05);
    EXPECT_GT(arm8, arm16 * 3);
    // Per-benchmark, FITS16 never misses more than ARM16.
    for (const BenchResult *b : results) {
        EXPECT_LE(b->of(ConfigId::FITS16).run.icache.missesPerMillion(),
                  b->of(ConfigId::ARM16)
                          .run.icache.missesPerMillion() +
                      1.0)
            << b->name;
    }
}

TEST(Experiment, Fig14IpcShape)
{
    auto results = runner().all();
    for (const BenchResult *b : results) {
        for (ConfigId id : kAllConfigs) {
            EXPECT_LE(b->of(id).run.ipc(), 2.0) << b->name;
            EXPECT_GT(b->of(id).run.ipc(), 0.2) << b->name;
        }
    }
    double arm16 = suiteAvg([](const BenchResult &b) {
        return b.of(ConfigId::ARM16).run.ipc();
    });
    double arm8 = suiteAvg([](const BenchResult &b) {
        return b.of(ConfigId::ARM8).run.ipc();
    });
    double fits8 = suiteAvg([](const BenchResult &b) {
        return b.of(ConfigId::FITS8).run.ipc();
    });
    EXPECT_LT(arm8, arm16);          // shrinking the ARM cache hurts
    EXPECT_GT(fits8, arm16 * 0.95);  // FITS8 keeps up with ARM16
}

TEST(Experiment, FigureTablesHaveSuiteRowsPlusAverage)
{
    Table t3 = fig3StaticMapping(runner());
    EXPECT_EQ(t3.rows(), 22u);
    Table t5 = fig5CodeSize(runner());
    EXPECT_EQ(t5.header().size(), 4u);
    Table t6 = fig6PowerBreakdown(runner());
    EXPECT_EQ(t6.header().size(), 13u);
    Table t13 = fig13MissRate(runner());
    EXPECT_EQ(t13.body().back().front(), "average");
}

TEST(Experiment, ChecksumValidatedInEveryConfig)
{
    // compute() fatals on checksum mismatch, so simply touching a
    // benchmark validates all four configurations.
    EXPECT_NO_THROW(runner().get("crc32"));
    EXPECT_NO_THROW(runner().get("sha"));
}

} // namespace
} // namespace pfits
