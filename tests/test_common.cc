/** @file Unit tests for logging, RNG, statistics and table output. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace pfits
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 42), FatalError);
    try {
        fatal("value=%d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, WarnOnceEmitsExactlyOnce)
{
    setQuiet(false);
    uint64_t before = warnCount();
    for (int i = 0; i < 100; ++i)
        warn_once("only once please (%d)", i);
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Logging, WarnEveryNRateLimits)
{
    setQuiet(false);
    uint64_t before = warnCount();
    for (int i = 0; i < 100; ++i)
        warn_every_n(10, "every tenth (%d)", i);
    // Fires on iterations 0, 10, 20, ... 90.
    EXPECT_EQ(warnCount(), before + 10);

    // A different call site keeps its own counter.
    before = warnCount();
    for (int i = 0; i < 5; ++i)
        warn_every_n(10, "first of five");
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::set<uint32_t> seen;
    for (int i = 0; i < 10000; ++i) {
        uint32_t v = rng.below(17);
        ASSERT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // every bucket hit
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 20000; ++i) {
        int32_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        hit_lo = hit_lo || v == -3;
        hit_hi = hit_hi || v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, CounterIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionBuckets)
{
    Distribution dist(0, 9, 2); // buckets [0,1],[2,3],...,[8,9]
    dist.sample(0);
    dist.sample(1);
    dist.sample(9);
    dist.sample(-5);
    dist.sample(100, 3);
    EXPECT_EQ(dist.samples(), 7u);
    EXPECT_EQ(dist.buckets()[0], 2u);
    EXPECT_EQ(dist.buckets()[4], 1u);
    EXPECT_EQ(dist.underflow(), 1u);
    EXPECT_EQ(dist.overflow(), 3u);
    EXPECT_EQ(dist.minSample(), -5);
    EXPECT_EQ(dist.maxSample(), 100);
}

TEST(Stats, DistributionMean)
{
    Distribution dist(0, 100, 10);
    dist.sample(10);
    dist.sample(30);
    EXPECT_DOUBLE_EQ(dist.mean(), 20.0);
}

TEST(Stats, DistributionRejectsBadConfig)
{
    EXPECT_THROW(Distribution(0, 10, 0), FatalError);
    EXPECT_THROW(Distribution(10, 0, 1), FatalError);
}

TEST(Stats, GroupLookupAndDump)
{
    Counter hits;
    hits += 10;
    StatGroup group("icache");
    group.addCounter("hits", &hits, "cache hits");
    group.addFormula("double_hits",
                     [&]() { return 2.0 * hits.value(); });
    EXPECT_DOUBLE_EQ(group.lookup("hits"), 10.0);
    EXPECT_DOUBLE_EQ(group.lookup("double_hits"), 20.0);
    EXPECT_TRUE(group.has("hits"));
    EXPECT_FALSE(group.has("misses"));
    EXPECT_THROW(group.lookup("nope"), PanicError);

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("icache.hits 10"), std::string::npos);
}

TEST(Stats, GroupRejectsDuplicates)
{
    Counter c;
    StatGroup group("g");
    group.addCounter("x", &c);
    EXPECT_THROW(group.addCounter("x", &c), PanicError);
}

TEST(Table, PrintAlignsAndCsvEscapes)
{
    Table table("demo");
    table.setHeader({"name", "v"});
    table.addRow({"a,b", "1"});
    table.addRow("plain", {2.5}, 1);

    std::ostringstream text;
    table.print(text);
    EXPECT_NE(text.str().find("demo"), std::string::npos);
    EXPECT_NE(text.str().find("2.5"), std::string::npos);

    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_NE(csv.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, CsvEscapesQuotesAndNewlines)
{
    Table table("rfc4180");
    table.setHeader({"name", "v"});
    table.addRow({"say \"hi\"", "1"});
    table.addRow({"two\nlines", "2"});
    table.addRow({"cr\rhere", "3"});
    table.addRow({"comma,and\"quote", "4"});
    table.addRow({"plain", "5"});

    std::ostringstream csv;
    table.printCsv(csv);
    const std::string out = csv.str();
    // Embedded quotes are doubled and the cell is quoted.
    EXPECT_NE(out.find("\"say \"\"hi\"\"\",1"), std::string::npos);
    // Line breaks force quoting (without doubling anything).
    EXPECT_NE(out.find("\"two\nlines\",2"), std::string::npos);
    EXPECT_NE(out.find("\"cr\rhere\",3"), std::string::npos);
    // Both triggers at once: quoted, with the quote doubled.
    EXPECT_NE(out.find("\"comma,and\"\"quote\",4"), std::string::npos);
    // Unremarkable cells stay unquoted.
    EXPECT_NE(out.find("plain,5"), std::string::npos);
    EXPECT_EQ(out.find("\"plain\""), std::string::npos);
}

TEST(Table, RowWidthChecked)
{
    Table table("demo");
    table.setHeader({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.4713, 1), "47.1%");
}

} // namespace
} // namespace pfits
