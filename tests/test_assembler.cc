/** @file Tests for the text assembler and the ProgramBuilder DSL. */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "assembler/builder.hh"
#include "common/logging.hh"

namespace pfits
{
namespace
{

MicroOp
first(const Program &prog, size_t index = 0)
{
    MicroOp uop;
    EXPECT_TRUE(decodeArm(prog.code.at(index), uop));
    return uop;
}

TEST(Assembler, BasicInstructions)
{
    Program prog = assemble("t", R"(
        mov r0, #1
        add r1, r0, r2
        subs r2, r2, #1
        cmp r1, r2
        ret
    )");
    ASSERT_EQ(prog.code.size(), 5u);
    EXPECT_EQ(disassembleArm(prog.code[0]), "mov r0, #1");
    EXPECT_EQ(disassembleArm(prog.code[1]), "add r1, r0, r2");
    EXPECT_EQ(disassembleArm(prog.code[2]), "subs r2, r2, #1");
    EXPECT_EQ(disassembleArm(prog.code[3]), "cmp r1, r2");
    EXPECT_EQ(disassembleArm(prog.code[4]), "ret");
}

TEST(Assembler, ConditionAndFlagSuffixes)
{
    Program prog = assemble("t", R"(
        addeq r0, r0, #1
        movne r1, r2
        bls out
        ands r3, r3, r4
    out:
        swi #0
    )");
    EXPECT_EQ(first(prog, 0).cond, Cond::EQ);
    EXPECT_EQ(first(prog, 1).cond, Cond::NE);
    MicroOp b = first(prog, 2);
    EXPECT_EQ(b.op, Op::B);
    EXPECT_EQ(b.cond, Cond::LS);
    EXPECT_EQ(b.branchOffset, 2);
    EXPECT_TRUE(first(prog, 3).setsFlags);
}

TEST(Assembler, BranchAndCallResolution)
{
    Program prog = assemble("t", R"(
    top:
        bl func
        b top
    func:
        ret
    )");
    EXPECT_EQ(first(prog, 0).op, Op::BL);
    EXPECT_EQ(first(prog, 0).branchOffset, 2);
    EXPECT_EQ(first(prog, 1).branchOffset, -1);
}

TEST(Assembler, MemoryOperandForms)
{
    Program prog = assemble("t", R"(
        ldr r0, [r1]
        ldr r0, [r1, #8]
        str r0, [r1, #-8]
        ldrb r2, [r3, r4]
        ldr r2, [r3, r4, lsl #2]
        ldrsh r5, [r6, #-2]
    )");
    EXPECT_EQ(first(prog, 0).memDisp, 0);
    EXPECT_EQ(first(prog, 1).memDisp, 8);
    EXPECT_EQ(first(prog, 2).memDisp, -8);
    EXPECT_EQ(first(prog, 3).memKind, MemOffsetKind::REG);
    EXPECT_EQ(first(prog, 4).memKind, MemOffsetKind::REG_SHIFT_IMM);
    EXPECT_EQ(first(prog, 4).shiftAmount, 2);
    EXPECT_EQ(first(prog, 5).op, Op::LDRSH);
}

TEST(Assembler, PushPopAndLdmStm)
{
    Program prog = assemble("t", R"(
        push {r4, r5, lr}
        pop {r4, r5, lr}
        ldm r0!, {r1, r2}
        stm sp!, {r6}
    )");
    MicroOp push = first(prog, 0);
    EXPECT_EQ(push.op, Op::STM);
    EXPECT_EQ(push.rn, SP);
    EXPECT_EQ(push.regList, (1u << R4) | (1u << R5) | (1u << LR));
    EXPECT_EQ(first(prog, 2).rn, R0);
}

TEST(Assembler, ShiftPseudoOps)
{
    Program prog = assemble("t", R"(
        lsl r0, r1, #4
        lsr r2, r3, r4
        asr r5, r6, #31
        ror r7, r8, #1
    )");
    EXPECT_EQ(first(prog, 0).shiftType, ShiftType::LSL);
    EXPECT_EQ(first(prog, 1).op2Kind, Operand2Kind::REG_SHIFT_REG);
    EXPECT_EQ(first(prog, 2).shiftAmount, 31);
    EXPECT_EQ(first(prog, 3).shiftType, ShiftType::ROR);
}

TEST(Assembler, DataSectionsAndLa)
{
    Program prog = assemble("t", R"(
        la r0, table
        ldr r1, [r0]
        swi #0
    .data table
        .word 0x11223344, 5
        .byte 1, 2
        .half 0x8000
        .space 8
    )");
    uint32_t base = prog.symbol("table");
    ASSERT_EQ(prog.data.size(), 1u);
    EXPECT_EQ(prog.data[0].base, base);
    ASSERT_EQ(prog.data[0].bytes.size(), 4u + 4 + 2 + 2 + 8);
    EXPECT_EQ(prog.data[0].bytes[0], 0x44);
    EXPECT_EQ(prog.data[0].bytes[3], 0x11);
    // la is always movw+movt
    EXPECT_EQ(first(prog, 0).op, Op::MOVW);
    EXPECT_EQ(first(prog, 1).op, Op::MOVT);
}

TEST(Assembler, LiPseudo)
{
    Program prog = assemble("t", R"(
        li r0, #0x12345678
        swi #0
    )");
    EXPECT_EQ(first(prog, 0).op, Op::MOVW);
    EXPECT_EQ(first(prog, 0).imm, 0x5678u);
    EXPECT_EQ(first(prog, 1).op, Op::MOVT);
    EXPECT_EQ(first(prog, 1).imm, 0x1234u);
}

TEST(Assembler, CommentsAndErrors)
{
    EXPECT_NO_THROW(assemble("t", "; just a comment\nnop @ trailing\n"));
    EXPECT_THROW(assemble("t", "frobnicate r0\n"), FatalError);
    EXPECT_THROW(assemble("t", "b nowhere\n"), FatalError);
    EXPECT_THROW(assemble("t", "mov r0\n"), FatalError);
    EXPECT_THROW(assemble("t", "mov r0, #0x12345\n"), FatalError);
    EXPECT_THROW(assemble("t", "add r16, r0, r1\n"), FatalError);
    EXPECT_THROW(assemble("t", ""), FatalError);
    EXPECT_THROW(assemble("t", "dup:\ndup:\nnop\n"), FatalError);
}

// --- ProgramBuilder -------------------------------------------------------

TEST(Builder, EmitsAndResolvesLabels)
{
    ProgramBuilder b("t");
    Label loop = b.label();
    b.movi(R0, 10);
    b.bind(loop);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.exit();
    Program prog = b.finish();
    ASSERT_EQ(prog.code.size(), 4u);
    MicroOp branch;
    ASSERT_TRUE(decodeArm(prog.code[2], branch));
    EXPECT_EQ(branch.branchOffset, -1);
}

TEST(Builder, MoviPicksCheapestSequence)
{
    ProgramBuilder b("t");
    b.movi(R0, 0xff);        // mov
    b.movi(R1, 0xffffffff);  // mvn
    b.movi(R2, 0xbeef);      // movw
    b.movi(R3, 0x12345678);  // movw+movt
    b.exit();
    Program prog = b.finish();
    ASSERT_EQ(prog.code.size(), 6u);
    EXPECT_EQ(disassembleArm(prog.code[0]), "mov r0, #255");
    EXPECT_EQ(disassembleArm(prog.code[1]), "mvn r1, #0");
    EXPECT_EQ(disassembleArm(prog.code[2]), "movw r2, #48879");
}

TEST(Builder, DataSegmentsGetDistinctAddresses)
{
    ProgramBuilder b("t");
    uint32_t a = b.words("a", {1, 2, 3});
    uint32_t c = b.bytes("c", {9});
    uint32_t d = b.zeros("d", 64);
    b.exit();
    EXPECT_LT(a, c);
    EXPECT_LT(c, d);
    EXPECT_EQ(a % 4, 0u);
    EXPECT_EQ(d % 4, 0u);
    Program prog = b.finish();
    EXPECT_EQ(prog.symbol("a"), a);
    EXPECT_THROW(prog.symbol("nope"), FatalError);
}

TEST(Builder, RejectsMisuse)
{
    ProgramBuilder b("t");
    Label l = b.label();
    b.bind(l);
    EXPECT_THROW(b.bind(l), FatalError);
    EXPECT_THROW(b.b(Label{}), FatalError);
    EXPECT_THROW(b.cmpi(R0, 0x12345), FatalError); // unencodable imm
    ProgramBuilder dup("t");
    dup.words("x", {1});
    EXPECT_THROW(dup.words("x", {2}), FatalError);
}

TEST(Builder, UnboundLabelFailsAtFinish)
{
    ProgramBuilder b("t");
    Label never = b.label();
    b.b(never);
    EXPECT_THROW(b.finish(), FatalError);
}

TEST(Builder, RegMaskHelper)
{
    EXPECT_EQ(regMask({R0, R4, LR}),
              (1u << R0) | (1u << R4) | (1u << LR));
    EXPECT_THROW(regMask({16}), FatalError);
}

TEST(Builder, ListingContainsAddresses)
{
    ProgramBuilder b("t");
    b.nop();
    b.exit();
    Program prog = b.finish();
    std::string listing = prog.listing();
    EXPECT_NE(listing.find("00008000"), std::string::npos);
    EXPECT_NE(listing.find("swi"), std::string::npos);
}

} // namespace
} // namespace pfits
