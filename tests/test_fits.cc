/** @file Tests for the FITS toolchain: signatures, profiler, synthesis,
 *  the programmable decoder, and the translator. */

#include <gtest/gtest.h>

#include "assembler/builder.hh"
#include "common/logging.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

/** A small but representative program exercising many signatures. */
Program
sampleProgram()
{
    ProgramBuilder b("sample");
    b.words("tab", {1, 2, 3, 4, 5, 6, 7, 8});
    b.zeros("out", 64);
    b.zeros("result", 4);

    b.lea(R0, "tab");
    b.lea(R1, "out");
    b.movi(R2, 8);
    b.movi(R3, 0);
    Label loop = b.here();
    b.ldrr(R4, R0, R3, 2);
    b.aluShift(AluOp::ADD, R5, R4, R4, ShiftType::LSL, 3);
    b.addi(R5, R5, 17);
    b.mla(R6, R4, R5, R6);
    b.strr(R5, R1, R3, 2);
    b.addi(R3, R3, 1);
    b.cmp(R3, R2);
    b.b(loop, Cond::NE);

    b.movi(R7, 0x12345678); // forces the dictionary / byte path
    b.eor(R6, R6, R7);
    b.mov(R0, R6);
    b.lea(R1, "result");
    b.str(R0, R1, 0);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    return b.finish();
}

struct Pipeline
{
    Program prog;
    ProfileInfo profile;
    FitsIsa isa;
    FitsProgram fits;

    explicit Pipeline(Program p, SynthParams sp = {})
        : prog(std::move(p)),
          profile(profileProgram(prog)),
          isa(synthesize(profile, sp, prog.name)),
          fits(translateProgram(prog, isa, profile))
    {
    }
};

TEST(Signature, DerivedFromMicroOps)
{
    MicroOp uop;
    uop.op = Op::ADD;
    uop.cond = Cond::EQ;
    uop.setsFlags = true;
    uop.op2Kind = Operand2Kind::IMM;
    Signature sig = signatureOf(uop);
    EXPECT_EQ(sig.op, Op::ADD);
    EXPECT_EQ(sig.cond, Cond::EQ);
    EXPECT_TRUE(sig.setsFlags);
    EXPECT_EQ(sig.form, SigForm::IMM);

    uop.op2Kind = Operand2Kind::REG_SHIFT_IMM;
    uop.shiftType = ShiftType::ASR;
    sig = signatureOf(uop);
    EXPECT_EQ(sig.form, SigForm::SHIFT_IMM);
    EXPECT_EQ(sig.shiftType, ShiftType::ASR);

    MicroOp mem;
    mem.op = Op::LDR;
    mem.memKind = MemOffsetKind::REG;
    mem.memAdd = false;
    sig = signatureOf(mem);
    EXPECT_EQ(sig.form, SigForm::MEM_REG);
    EXPECT_FALSE(sig.memAdd);
}

TEST(Signature, KeysAreDistinct)
{
    Signature a = signatureOf([] {
        MicroOp u;
        u.op = Op::ADD;
        u.op2Kind = Operand2Kind::REG;
        return u;
    }());
    Signature b = a;
    b.setsFlags = true;
    Signature c = a;
    c.cond = Cond::NE;
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(b.key(), c.key());
    EXPECT_FALSE(a.toString().empty());
}

TEST(Profile, CountsStaticAndDynamic)
{
    Program prog = sampleProgram();
    ProfileInfo info = profileProgram(prog);
    EXPECT_EQ(info.totalStatic, prog.code.size());
    EXPECT_GT(info.totalDynamic, info.totalStatic); // loop executed
    EXPECT_EQ(info.dynCounts.size(), prog.code.size());

    // The loop body executes 8 times.
    Signature mla = signatureOf([] {
        MicroOp u;
        u.op = Op::MLA;
        return u;
    }());
    const SigStats *stats = info.find(mla);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->dynCount, 8u);
    EXPECT_EQ(stats->staticCount, 1u);
}

TEST(Profile, TracksRegistersAndScratch)
{
    ProfileInfo info = profileProgram(sampleProgram());
    EXPECT_GT(info.numRegsUsed(), 6u);
    int scratch = info.pickScratchReg();
    ASSERT_GE(scratch, 0);
    EXPECT_FALSE((info.regsUsed >> scratch) & 1u);
    EXPECT_EQ(scratch, R12); // kernels leave r12 free by convention
}

TEST(Profile, StaticOnlyModeUsesUnitWeights)
{
    ProfileInfo info = profileProgram(sampleProgram(), false);
    EXPECT_EQ(info.totalDynamic, info.totalStatic);
}

TEST(Profile, MergesMovwMovtPairs)
{
    ProfileInfo info = profileProgram(sampleProgram());
    ASSERT_FALSE(info.mergeablePairs.empty());
    ASSERT_TRUE(info.pairConstants.count(0x12345678u));
    // The pair registers as a synthetic MOV #imm32.
    Signature mov_imm;
    mov_imm.op = Op::MOV;
    mov_imm.form = SigForm::IMM;
    const SigStats *stats = info.find(mov_imm);
    ASSERT_NE(stats, nullptr);
    EXPECT_TRUE(stats->values.count(0x12345678));
}

TEST(Profile, PairNotMergedAcrossBranchTarget)
{
    ProgramBuilder b("t");
    Label target = b.label();
    b.movi(R0, 0x12345678); // movw + movt
    // Jump into the middle of the pair: merging would be unsound.
    b.bind(target);
    // (the label binds to the movt? no: bind binds the *next* emitted)
    b.nop();
    b.b(target, Cond::EQ);
    b.exit();
    Program prog = b.finish();
    auto pairs = findMovPairs(prog, prog.decodeAll());
    EXPECT_EQ(pairs.size(), 1u); // target is after the pair: still ok
}

TEST(Synth, ProducesPrefixFreeOpcodes)
{
    Pipeline p(sampleProgram());
    EXPECT_LE(p.isa.kraftSum(), 65536u);
    // The decode table must cover every word claimed by some slot and
    // map it back to that slot.
    for (size_t i = 0; i < p.isa.slots.size(); ++i) {
        const FitsSlot &slot = p.isa.slots[i];
        uint32_t base = static_cast<uint32_t>(slot.opcode)
                        << (16 - slot.opcodeBits);
        EXPECT_EQ(p.isa.slotFor(static_cast<uint16_t>(base)),
                  static_cast<int>(i));
    }
}

TEST(Synth, SmallRegisterSetsGetNarrowFields)
{
    ProgramBuilder b("tiny");
    b.movi(R0, 10);
    Label l = b.here();
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(l, Cond::NE);
    b.exit();
    Pipeline p(b.finish());
    EXPECT_EQ(p.isa.regBits, 3u);
    // All touched registers must be mapped.
    EXPECT_GE(p.isa.regMap[R0], 0);
}

TEST(Synth, WideRegisterSetsUseFourBits)
{
    Pipeline p(sampleProgram());
    EXPECT_EQ(p.isa.regBits, 4u);
}

TEST(Synth, ForceWideRegFieldsParam)
{
    ProgramBuilder b("tiny");
    b.movi(R0, 1);
    b.exit();
    SynthParams sp;
    sp.forceWideRegFields = true;
    Pipeline p(b.finish(), sp);
    EXPECT_EQ(p.isa.regBits, 4u);
}

TEST(Synth, DictionaryHoldsHotWideConstant)
{
    Pipeline p(sampleProgram());
    EXPECT_GE(p.isa.opDict.indexOf(0x12345678), 0);
}

TEST(Synth, MandatorySlotsPresent)
{
    Pipeline p(sampleProgram());
    bool has_branch = false, has_swi = false, has_mla_path = false;
    for (const FitsSlot &slot : p.isa.slots) {
        if (slot.sig.op == Op::B)
            has_branch = true;
        if (slot.sig.op == Op::SWI)
            has_swi = true;
        if (slot.sig.op == Op::MLA || slot.sig.op == Op::MUL)
            has_mla_path = true;
    }
    EXPECT_TRUE(has_branch);
    EXPECT_TRUE(has_swi);
    EXPECT_TRUE(has_mla_path);
}

TEST(FitsIsaTest, EncodeDecodeRoundTripAllSlots)
{
    Pipeline p(sampleProgram());
    // For every ARM instruction that maps 1:1, encoding then decoding
    // must reproduce identical semantics text.
    for (uint16_t word : p.fits.code) {
        MicroOp uop;
        ASSERT_TRUE(p.isa.decode(word, uop));
        int slot = p.isa.slotFor(word);
        ASSERT_GE(slot, 0);
        uint16_t again;
        ASSERT_TRUE(p.isa.encode(static_cast<size_t>(slot), uop, again))
            << p.isa.disassembleWord(word);
        EXPECT_EQ(again, word);
    }
}

TEST(FitsIsaTest, EncodeRejectsWrongSignature)
{
    Pipeline p(sampleProgram());
    MicroOp swi;
    swi.op = Op::SWI;
    swi.imm = 0;
    for (size_t i = 0; i < p.isa.slots.size(); ++i) {
        if (p.isa.slots[i].sig.op == Op::SWI)
            continue;
        uint16_t word;
        EXPECT_FALSE(p.isa.encode(i, swi, word));
    }
}

TEST(FitsIsaTest, ListingMentionsDictionaries)
{
    Pipeline p(sampleProgram());
    std::string listing = p.isa.listing();
    EXPECT_NE(listing.find("dictionaries"), std::string::npos);
    EXPECT_NE(listing.find("kraft"), std::string::npos);
}

TEST(ValueDictionaryTest, IndexBitsAndLookup)
{
    ValueDictionary dict;
    EXPECT_EQ(dict.indexOf(5), -1);
    dict.add(5);
    dict.add(5); // dedup
    dict.add(-7);
    EXPECT_EQ(dict.size(), 2u);
    EXPECT_EQ(dict.indexOf(5), 0);
    EXPECT_EQ(dict.indexOf(-7), 1);
    EXPECT_EQ(dict.at(1), -7);
    EXPECT_THROW(dict.at(9), PanicError);
    EXPECT_EQ(dict.indexBits(), 1u);
    dict.add(1);
    dict.add(2);
    dict.add(3);
    EXPECT_EQ(dict.indexBits(), 3u);
}

TEST(Translate, CodeSizeRoughlyHalves)
{
    Pipeline p(sampleProgram());
    double ratio = static_cast<double>(p.fits.codeBytes()) /
                   p.prog.codeBytes();
    EXPECT_LT(ratio, 0.70);
    EXPECT_GT(ratio, 0.40);
}

TEST(Translate, MappingStatsConsistent)
{
    Pipeline p(sampleProgram());
    const MappingStats &m = p.fits.mapping;
    EXPECT_EQ(m.staticTotal, p.prog.code.size());
    EXPECT_LE(m.staticMapped, m.staticTotal);
    EXPECT_LE(m.dynMapped, m.dynTotal);
    EXPECT_GT(m.staticRate(), 0.5);
    EXPECT_GE(m.dynRate(), m.staticRate() * 0.8);
    EXPECT_GT(m.expansionFactor(), 0.4);
    EXPECT_LT(m.expansionFactor(), 2.0);
}

TEST(Translate, SemanticsPreserved)
{
    Program prog = sampleProgram();
    Pipeline p(prog);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fits(p.fits);
    RunResult ra = Machine(arm, CoreConfig{}).run();
    RunResult rf = Machine(fits, CoreConfig{}).run();
    EXPECT_EQ(ra.io.emitted, rf.io.emitted);
    for (unsigned reg = 0; reg < NUM_REGS; ++reg) {
        if (reg == R12 || reg == LR)
            continue; // scratch / return-address differ by design
        EXPECT_EQ(ra.finalState.regs[reg], rf.finalState.regs[reg])
            << "r" << reg;
    }
}

TEST(Translate, ConditionalRewritePreservesSemantics)
{
    // Force expansion of conditional ops by zeroing the slot budget so
    // only essential slots survive.
    ProgramBuilder b("cond");
    b.zeros("result", 4);
    b.movi(R0, 50);
    b.movi(R1, 0);
    Label loop = b.here();
    b.tsti(R0, 1);
    b.addi(R1, R1, 3, Cond::NE);
    b.subi(R1, R1, 1, Cond::EQ);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.mov(R0, R1);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();

    SynthParams sp;
    sp.maxSlots = 0; // admit no optional slots at all
    Pipeline p(prog, sp);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fits(p.fits);
    RunResult ra = Machine(arm, CoreConfig{}).run();
    RunResult rf = Machine(fits, CoreConfig{}).run();
    EXPECT_EQ(ra.io.emitted, rf.io.emitted);
    // With no AIS, mapping must be poor but correctness intact.
    EXPECT_LT(p.fits.mapping.staticRate(), 1.0);
}

TEST(Translate, BranchRetargetingAcrossExpansions)
{
    // A branch over an expanding region must still land correctly.
    ProgramBuilder b("branches");
    b.movi(R0, 0);
    b.movi(R1, 3);
    Label head = b.here();
    b.movi(R2, 0x0badf00d); // expands (pair -> dictionary or bytes)
    b.eor(R0, R0, R2);
    b.subi(R1, R1, 1, Cond::AL, true);
    b.b(head, Cond::NE);
    b.mov(R0, R0);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();
    Pipeline p(prog);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fits(p.fits);
    EXPECT_EQ(Machine(arm, CoreConfig{}).run().io.emitted,
              Machine(fits, CoreConfig{}).run().io.emitted);
}

TEST(Translate, CallsAndReturnsWork)
{
    ProgramBuilder b("calls");
    Label fn = b.label();
    Label start = b.label();
    b.b(start);
    b.bind(fn);
    b.addi(R0, R0, 7);
    b.ret();
    b.bind(start);
    b.movi(R0, 0);
    b.bl(fn);
    b.bl(fn);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();
    Pipeline p(prog);
    ArmFrontEnd arm(prog);
    FitsFrontEnd fits(p.fits);
    RunResult ra = Machine(arm, CoreConfig{}).run();
    RunResult rf = Machine(fits, CoreConfig{}).run();
    EXPECT_EQ(ra.io.emitted, rf.io.emitted);
    EXPECT_EQ(ra.io.emitted.at(0), 14u);
}

TEST(Translate, PushPopThroughListDictionary)
{
    ProgramBuilder b("stack");
    Label fn = b.label();
    Label start = b.label();
    b.b(start);
    b.bind(fn);
    b.push({R4, R5, LR});
    b.movi(R4, 9);
    b.add(R0, R0, R4);
    b.pop({R4, R5, LR});
    b.ret();
    b.bind(start);
    b.movi(R0, 1);
    b.movi(R4, 111); // must survive the call
    b.bl(fn);
    b.add(R0, R0, R4);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();
    Pipeline p(prog);
    EXPECT_FALSE(p.isa.listDict.empty());
    ArmFrontEnd arm(prog);
    FitsFrontEnd fits(p.fits);
    EXPECT_EQ(Machine(fits, CoreConfig{}).run().io.emitted.at(0), 121u);
}

TEST(Synth, BimodalImmediatesStillGetInlineSlots)
{
    // Regression: when immediate histograms are bimodal (hot #0/#1 plus
    // dictionary-bound wide constants), no width reaches the coverage
    // target — the synthesizer must still propose the best inline width
    // rather than forcing every small constant through an expansion.
    ProgramBuilder b("bimodal");
    b.movi(R0, 100);
    Label loop = b.here();
    b.movi(R1, 0);               // hot small constant
    b.movi(R2, 1);               // hot small constant
    b.movi(R3, 0x12345678);      // wide (dictionary) constant
    b.eor(R4, R1, R2);
    b.eor(R4, R4, R3);
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Pipeline p(b.finish());
    // mov #0 / mov #1 must map one-to-one.
    MicroOp probe;
    probe.op = Op::MOV;
    probe.op2Kind = Operand2Kind::IMM;
    probe.rd = R1;
    probe.imm = 0;
    bool covered = false;
    uint16_t word;
    for (size_t i = 0; i < p.isa.slots.size(); ++i)
        covered = covered || p.isa.encode(i, probe, word);
    EXPECT_TRUE(covered);
    EXPECT_GT(p.fits.mapping.dynRate(), 0.97);
}

TEST(Translate, PerArmCountsConsistentWithAggregates)
{
    Pipeline p(sampleProgram());
    const MappingStats &m = p.fits.mapping;
    ASSERT_EQ(m.perArm.size(), m.staticTotal);
    uint64_t mapped = 0, emitted = 0;
    for (uint32_t n : m.perArm) {
        if (n <= 1)
            ++mapped;
        emitted += n;
    }
    EXPECT_EQ(mapped, m.staticMapped);
    EXPECT_EQ(emitted, m.fitsInstructions);
}

TEST(Translate, FitsBinaryDecodesEverywhere)
{
    Pipeline p(sampleProgram());
    for (size_t i = 0; i < p.fits.code.size(); ++i) {
        MicroOp uop;
        EXPECT_TRUE(p.isa.decode(p.fits.code[i], uop)) << i;
    }
    EXPECT_NE(p.fits.listing().find(":"), std::string::npos);
}

} // namespace
} // namespace pfits
