/** @file The Chip's structural contracts: a one-tile default chip IS
 *  a Machine (every RunResult field and the memory image), the
 *  round-robin quantum is architecturally unobservable, multi-tile
 *  runs under shared-L2 contention keep per-tile architecture equal
 *  to independent single-core runs, chip runs are deterministic, and
 *  the SimCache memo key walls multi-tile requests off from cached
 *  single-core entries. */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "exp/simcache.hh"
#include "sim/chip.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "verify/randprog.hh"

namespace pfits
{
namespace
{

void
expectSameCache(const char *what, const CacheStats &a,
                const CacheStats &b)
{
    EXPECT_EQ(a.reads, b.reads) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    EXPECT_EQ(a.readMisses, b.readMisses) << what;
    EXPECT_EQ(a.writeMisses, b.writeMisses) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << what;
    EXPECT_EQ(a.parityDetections, b.parityDetections) << what;
    EXPECT_EQ(a.corruptDeliveries, b.corruptDeliveries) << what;
}

/** Architectural equality: what contention may never change. */
void
expectSameArch(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.trapReason, b.trapReason);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.annulled, b.annulled);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    for (unsigned r = 0; r < NUM_REGS; ++r)
        EXPECT_EQ(a.finalState.regs[r], b.finalState.regs[r])
            << "r" << r;
    EXPECT_EQ(a.finalState.flags.n, b.finalState.flags.n);
    EXPECT_EQ(a.finalState.flags.z, b.finalState.flags.z);
    EXPECT_EQ(a.finalState.flags.c, b.finalState.flags.c);
    EXPECT_EQ(a.finalState.flags.v, b.finalState.flags.v);
    EXPECT_EQ(a.io.console, b.io.console);
    EXPECT_EQ(a.io.emitted, b.io.emitted);
}

/** Full equality: architecture plus timing, caches and activity. */
void
expectSameRun(const RunResult &a, const RunResult &b)
{
    expectSameArch(a, b);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchToggleBits, b.fetchToggleBits);
    EXPECT_EQ(a.fetchBitsTotal, b.fetchBitsTotal);
    EXPECT_EQ(a.icacheRefillWords, b.icacheRefillWords);
    EXPECT_EQ(a.dmemAccesses, b.dmemAccesses);
    expectSameCache("icache", a.icache, b.icache);
    expectSameCache("dcache", a.dcache, b.dcache);
}

TEST(Chip, OneTileDefaultChipIsAMachine)
{
    for (uint64_t seed : {3ull, 17ull}) {
        Program prog = randomVerifyProgram(seed);
        ArmFrontEnd arm(prog);
        CoreConfig core;

        Machine machine(arm, core);
        RunResult solo = machine.run();

        Chip chip(std::vector<Chip::TileSpec>{{&arm, core}},
                  ChipConfig{});
        ChipResult cres = chip.run();

        ASSERT_EQ(cres.tiles.size(), 1u);
        expectSameRun(solo, cres.tiles.front());
        EXPECT_EQ(cres.chipCycles, solo.cycles);
        EXPECT_EQ(machine.mem().firstDifference(chip.tileMem(0)),
                  std::nullopt);
    }
}

TEST(Chip, QuantumIsArchitecturallyUnobservable)
{
    Program prog = randomVerifyProgram(29);
    ArmFrontEnd arm(prog);
    CoreConfig core;
    Machine machine(arm, core);
    RunResult solo = machine.run();

    for (uint64_t quantum : {1ull, 7ull, 4099ull}) {
        ChipConfig cfg;
        cfg.quantum = quantum;
        Chip chip(std::vector<Chip::TileSpec>{{&arm, core}}, cfg);
        ChipResult cres = chip.run();
        expectSameRun(solo, cres.tiles.front());
        EXPECT_EQ(machine.mem().firstDifference(chip.tileMem(0)),
                  std::nullopt)
            << "quantum " << quantum;
    }
}

TEST(Chip, SharedL2ChangesTimingNeverArchitecture)
{
    Program prog = randomVerifyProgram(31);
    ArmFrontEnd arm(prog);
    CoreConfig core;
    Machine machine(arm, core);
    RunResult solo = machine.run();

    ChipConfig cfg;
    cfg.sharedL2 = true;
    Chip chip(std::vector<Chip::TileSpec>{{&arm, core}}, cfg);
    ChipResult cres = chip.run();

    expectSameArch(solo, cres.tiles.front());
    EXPECT_EQ(machine.mem().firstDifference(chip.tileMem(0)),
              std::nullopt);
    EXPECT_EQ(chip.checkCoherence(), "");
    EXPECT_GT(cres.coherence.readFills, 0u);
}

TEST(Chip, MultiTileMatchesIndependentRunsAndIsDeterministic)
{
    Program prog = randomVerifyProgram(37);
    ArmFrontEnd arm(prog);
    CoreConfig core;
    Machine machine(arm, core);
    RunResult solo = machine.run();

    ChipConfig cfg;
    cfg.tiles = 3;
    cfg.sharedL2 = true;
    cfg.l2.sizeBytes = 16 * 1024; // small: force L2 contention
    cfg.quantum = 1009;

    std::vector<Chip::TileSpec> specs(cfg.tiles,
                                      Chip::TileSpec{&arm, core});
    Chip chip(specs, cfg);
    ChipResult first = chip.run();

    ASSERT_EQ(first.tiles.size(), cfg.tiles);
    for (unsigned t = 0; t < cfg.tiles; ++t) {
        SCOPED_TRACE("tile " + std::to_string(t));
        expectSameArch(solo, first.tiles[t]);
        EXPECT_EQ(machine.mem().firstDifference(chip.tileMem(t)),
                  std::nullopt);
    }
    EXPECT_EQ(chip.checkCoherence(), "");

    // Byte-identical on a repeat: same per-tile results, same L2 and
    // protocol activity, same chip cycle count.
    Chip again(specs, cfg);
    ChipResult second = again.run();
    EXPECT_EQ(first.chipCycles, second.chipCycles);
    for (unsigned t = 0; t < cfg.tiles; ++t) {
        SCOPED_TRACE("tile " + std::to_string(t));
        expectSameRun(first.tiles[t], second.tiles[t]);
    }
    EXPECT_EQ(first.l2.accesses(), second.l2.accesses());
    EXPECT_EQ(first.l2.misses(), second.l2.misses());
    EXPECT_EQ(first.l2.writebacks, second.l2.writebacks);
    EXPECT_EQ(first.coherence.readFills, second.coherence.readFills);
    EXPECT_EQ(first.coherence.backInvalidations,
              second.coherence.backInvalidations);
}

TEST(ChipConfig, ValidationRejectsInconsistentShapes)
{
    EXPECT_EQ(ChipConfig{}.validateError(), "");

    ChipConfig cfg;
    cfg.tiles = 0;
    EXPECT_NE(cfg.validateError().find("1..64"), std::string::npos);
    cfg.tiles = 65;
    EXPECT_NE(cfg.validateError().find("1..64"), std::string::npos);

    cfg = ChipConfig{};
    cfg.quantum = 0;
    EXPECT_NE(cfg.validateError().find("quantum"), std::string::npos);

    cfg = ChipConfig{};
    cfg.tileShift = 21;
    EXPECT_NE(cfg.validateError().find("22..31"), std::string::npos);
    cfg.tileShift = 32;
    EXPECT_NE(cfg.validateError().find("22..31"), std::string::npos);

    // Coloring windows must tile the 32-bit space: 64 windows of
    // 2^27 bytes do not fit.
    cfg = ChipConfig{};
    cfg.tiles = 64;
    cfg.tileShift = 27;
    EXPECT_NE(cfg.validateError().find("do not fit"),
              std::string::npos);

    // The shared L2 must be write-back (the directory owns dirty
    // data) and geometrically sound.
    cfg = ChipConfig{};
    cfg.sharedL2 = true;
    cfg.l2.writeBack = false;
    EXPECT_NE(cfg.validateError().find("write-back"),
              std::string::npos);
    cfg.l2.writeBack = true;
    cfg.l2.lineBytes = 3;
    EXPECT_NE(cfg.validateError(), "");

    cfg = ChipConfig{};
    cfg.tiles = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SimCacheChip, DefaultChipKeepsLegacyMemoKeys)
{
    CoreConfig core;
    // A default chip run IS a Machine run: the config key must be the
    // bare core hash, bit for bit, so every pre-chip memo entry,
    // manifest and golden snapshot keeps its exact identity.
    EXPECT_EQ(hashChipConfig(ChipConfig{}), 0u);
    EXPECT_EQ(hashConfigKey(core, ChipConfig{}), hashCoreConfig(core));

    ChipConfig two;
    two.tiles = 2;
    two.sharedL2 = true;
    EXPECT_NE(hashChipConfig(two), 0u);
    EXPECT_NE(hashConfigKey(core, two), hashCoreConfig(core));

    // Every chip knob is key material.
    ChipConfig other = two;
    other.quantum = two.quantum + 1;
    EXPECT_NE(hashChipConfig(other), hashChipConfig(two));
    other = two;
    other.l2.sizeBytes *= 2;
    EXPECT_NE(hashChipConfig(other), hashChipConfig(two));
    other = two;
    other.tileShift = 27;
    EXPECT_NE(hashChipConfig(other), hashChipConfig(two));

    // A shared L2 is non-default even for one tile.
    ChipConfig one_shared;
    one_shared.sharedL2 = true;
    EXPECT_FALSE(one_shared.isDefault());
    EXPECT_NE(hashChipConfig(one_shared), 0u);
}

TEST(SimCacheChip, MultiTileRequestNeverHitsSingleCoreEntry)
{
    Program prog = randomVerifyProgram(90001);
    ArmFrontEnd arm(prog);
    CoreConfig core;
    SimCache &cache = SimCache::instance();

    const uint64_t misses0 = cache.misses();
    SimResult solo = cache.simulate(arm, core);
    EXPECT_EQ(cache.misses(), misses0 + 1);
    EXPECT_FALSE(solo.chip.ranAsChip());

    // Same key again: a hit.
    const uint64_t hits0 = cache.hits();
    (void)cache.simulate(arm, core);
    EXPECT_EQ(cache.hits(), hits0 + 1);
    EXPECT_EQ(cache.misses(), misses0 + 1);

    // The multi-tile request must be a fresh computation, not an
    // answer from the cached single-core entry.
    ChipConfig chip;
    chip.tiles = 2;
    chip.sharedL2 = true;
    SimResult cres = cache.simulate(arm, core, {}, 0, {}, chip);
    EXPECT_EQ(cache.misses(), misses0 + 2);
    ASSERT_TRUE(cres.chip.ranAsChip());
    EXPECT_EQ(cres.chip.tileCycles.size(), 2u);
    EXPECT_EQ(cres.chip.tileInstructions.size(), 2u);
    EXPECT_GT(cres.chip.chipCycles, 0u);

    // The reported run is tile 0 of the chip: architecturally equal
    // to the single-core run (timing differs under the shared L2).
    expectSameArch(solo.run, cres.run);

    // And the chip entry itself memoizes.
    const uint64_t hits1 = cache.hits();
    (void)cache.simulate(arm, core, {}, 0, {}, chip);
    EXPECT_EQ(cache.hits(), hits1 + 1);
    EXPECT_EQ(cache.misses(), misses0 + 2);
}

} // namespace
} // namespace pfits
