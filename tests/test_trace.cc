/** @file The span tracing layer: args formatting, balanced and
 *  well-formed Chrome trace-event output from concurrent recorders,
 *  zero-footprint behaviour when disabled, deterministic engine span
 *  structure across --jobs settings, and end-to-end trace-ID
 *  propagation between an SvcClient and an embedded pfitsd server. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "exp/experiment.hh"
#include "exp/simcache.hh"
#include "exp/simservice.hh"
#include "obs/json.hh"
#include "obs/trace.hh"
#include "svc/client.hh"
#include "svc/server.hh"

namespace pfits
{
namespace
{

/** Parse a recorder's flush into a JSON document. */
JsonValue
flushToJson(const TraceRecorder &rec)
{
    std::ostringstream os;
    rec.writeJson(os);
    return JsonValue::parse(os.str());
}

/** Per-tid open-span depth over the whole event stream; gtest-fails
 *  on an E without a B. @return the final depths (all must be 0). */
std::map<double, int>
spanDepths(const JsonValue &doc)
{
    std::map<double, int> depth;
    for (const JsonValue &e : doc.get("traceEvents").asArray()) {
        const std::string &ph = e.get("ph").asString();
        double tid = e.get("tid").asNumber();
        if (ph == "B") {
            ++depth[tid];
        } else if (ph == "E") {
            --depth[tid];
            EXPECT_GE(depth[tid], 0) << "E before B on tid " << tid;
        }
    }
    return depth;
}

TEST(Trace, ArgsAccumulateEscapedJsonFragments)
{
    TraceArgs args;
    EXPECT_TRUE(args.empty());
    args.add("s", std::string_view("a\"b"))
        .add("n", static_cast<uint64_t>(42))
        .add("neg", static_cast<int64_t>(-7))
        .add("f", 1.5)
        .add("yes", true)
        .addHex("h", 0xdeadull);
    // The fragment must drop into {...} as a valid JSON object.
    JsonValue v = JsonValue::parse("{" + args.fragment() + "}");
    EXPECT_EQ(v.get("s").asString(), "a\"b");
    EXPECT_DOUBLE_EQ(v.get("n").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(v.get("neg").asNumber(), -7.0);
    EXPECT_DOUBLE_EQ(v.get("f").asNumber(), 1.5);
    EXPECT_TRUE(v.get("yes").asBool());
    EXPECT_EQ(v.get("h").asString(), "0xdead");
}

TEST(Trace, RecorderEmitsValidBalancedJsonAcrossThreads)
{
    TraceRecorder rec;
    TraceRecorder *prev = TraceRecorder::install(&rec);

    rec.nameThisThread("main");
    rec.begin("outer", "test", TraceArgs().add("k", 1));
    rec.instant("tick", "test");
    rec.begin("inner", "test");
    rec.end();
    rec.end();

    // A second thread records on its own lane, lock-free after the
    // first touch; a third lane is addressed explicitly.
    std::thread t([&] {
        rec.nameThisThread("helper");
        TraceSpan span("helper-work", "test");
        rec.instant("helper-tick", "test");
        uint32_t lane = 500;
        rec.nameLane(lane, "synthetic");
        rec.beginLane(lane, "quantum", "test");
        rec.instantLane(lane, "coherence", "test",
                        TraceArgs().addHex("line", 0x40));
        rec.endLane(lane);
    });
    t.join();

    TraceRecorder::install(prev);
    EXPECT_EQ(rec.eventCount(), 11u);

    JsonValue doc = flushToJson(rec);
    const auto &events = doc.get("traceEvents").asArray();
    // 11 recorded events + 3 thread_name metadata records.
    ASSERT_EQ(events.size(), 14u);

    std::set<std::string> track_names;
    double last_ts = -1;
    for (const JsonValue &e : events) {
        const std::string &ph = e.get("ph").asString();
        EXPECT_DOUBLE_EQ(e.get("pid").asNumber(), 1.0);
        EXPECT_TRUE(e.get("tid").isNumber());
        if (ph == "M") {
            track_names.insert(
                e.get("args").get("name").asString());
            continue;
        }
        ASSERT_TRUE(e.get("ts").isNumber());
        EXPECT_GE(e.get("ts").asNumber(), last_ts)
            << "flush must be time-sorted";
        last_ts = e.get("ts").asNumber();
        if (ph == "i")
            EXPECT_EQ(e.get("s").asString(), "t");
        if (ph == "B" || ph == "i")
            EXPECT_TRUE(e.get("name").isString());
    }
    EXPECT_EQ(track_names,
              (std::set<std::string>{"main", "helper", "synthetic"}));

    for (const auto &[tid, d] : spanDepths(doc))
        EXPECT_EQ(d, 0) << "unbalanced span on tid " << tid;
}

TEST(Trace, SpanClosesOnItsRecorderAfterUninstall)
{
    TraceRecorder rec;
    TraceRecorder *prev = TraceRecorder::install(&rec);
    {
        TraceSpan span("work", "test");
        ASSERT_EQ(span.recorder(), &rec);
        // The flush contract uninstalls before writing; an open span
        // must still close on the recorder it began on.
        TraceRecorder::install(prev);
    }
    EXPECT_EQ(rec.eventCount(), 2u);
    for (const auto &[tid, d] : spanDepths(flushToJson(rec)))
        EXPECT_EQ(d, 0) << tid;
}

TEST(Trace, DisabledTracingRecordsNothing)
{
    ASSERT_EQ(TraceRecorder::current(), nullptr)
        << "tests must not leak an installed recorder";
    TraceSpan span("never", "test");
    EXPECT_EQ(span.recorder(), nullptr);
}

TEST(Trace, TraceIdsAreNonZeroAndUnique)
{
    TraceRecorder rec;
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t id = rec.newTraceId();
        EXPECT_NE(id, 0u);
        EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
    }
}

/** Sorted (name, cat, count) fingerprint of every B and i event. */
std::map<std::string, int>
spanStructure(const JsonValue &doc)
{
    std::map<std::string, int> out;
    for (const JsonValue &e : doc.get("traceEvents").asArray()) {
        const std::string &ph = e.get("ph").asString();
        if (ph != "B" && ph != "i")
            continue;
        ++out[ph + "|" + e.get("name").asString() + "|" +
              e.get("cat").asString()];
    }
    return out;
}

/** One traced engine run of a single bench at @p jobs workers. */
std::map<std::string, int>
tracedRunStructure(unsigned jobs)
{
    SimCache::instance().clear();
    TraceRecorder rec;
    TraceRecorder *prev = TraceRecorder::install(&rec);
    {
        ExperimentParams params;
        params.jobs = jobs;
        Runner runner(params);
        runner.get("crc32");
    }
    TraceRecorder::install(prev);
    SimCache::instance().clear();
    return spanStructure(flushToJson(rec));
}

TEST(Trace, EngineSpanStructureIsDeterministicAcrossJobCounts)
{
    // Timestamps and lane assignment legitimately vary with the
    // worker count; the set of span names and their multiplicities —
    // one prepare, four simulate spans, four pool jobs, four fresh
    // sims — must not.
    std::map<std::string, int> serial = tracedRunStructure(1);
    std::map<std::string, int> four = tracedRunStructure(4);
    EXPECT_EQ(serial, four);

    EXPECT_EQ(serial.at("B|prepare|runner"), 1);
    EXPECT_EQ(serial.at("B|simulate|runner"), 4);
    EXPECT_EQ(serial.at("B|job|pool"), 4);
    EXPECT_EQ(serial.at("B|sim|simcache"), 4);
}

TEST(Trace, DaemonPropagatesTraceIdEndToEnd)
{
    static int seq = 0;
    std::string dir = testing::TempDir() + "pfits_trace_svc_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(seq++);
    ::mkdir(dir.c_str(), 0777);

    SvcServerConfig scfg;
    scfg.socketPath = dir + "/d.sock";
    scfg.storeDir = dir + "/store";
    SvcServer server(scfg);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    TraceRecorder rec;
    TraceRecorder *prev = TraceRecorder::install(&rec);

    PreparedBench prep = prepareBenchmark("crc32", ExperimentParams{});
    CoreConfig core;
    SimRequest sreq;
    sreq.fe = prep.armFe.get();
    sreq.core = &core;
    sreq.bench = "crc32";
    sreq.isFits = false;

    SimCache::instance().clear();
    SvcClientConfig ccfg;
    ccfg.socketPath = scfg.socketPath;
    SvcClient client(ccfg);
    SimResult result = client.simulate(sreq);
    EXPECT_EQ(result.run.outcome, RunOutcome::Completed);

    server.stop(); // quiesce: joins every recording daemon thread
    TraceRecorder::install(prev);
    SimCache::instance().clear();

    // Both halves live in this process, so one trace holds the
    // client-side request span and the server-side lifecycle span;
    // the propagated id is what joins them across the socket.
    JsonValue doc = flushToJson(rec);
    std::map<std::string, int> ids;
    for (const JsonValue &e : doc.get("traceEvents").asArray()) {
        if (e.get("ph").asString() != "B" ||
            !e.get("name").isString() ||
            e.get("name").asString() != "svc.request")
            continue;
        ASSERT_TRUE(e.get("args").get("trace").isString());
        ++ids[e.get("args").get("trace").asString()];
    }
    ASSERT_FALSE(ids.empty()) << "no svc.request spans recorded";
    bool joined = false;
    for (const auto &[id, n] : ids) {
        EXPECT_NE(id, "0x0");
        if (n >= 2)
            joined = true;
    }
    EXPECT_TRUE(joined)
        << "client and server spans must share a propagated trace id";

    for (const auto &[tid, d] : spanDepths(doc))
        EXPECT_EQ(d, 0) << "unbalanced span on tid " << tid;
}

} // namespace
} // namespace pfits
