/**
 * @file
 * Tests for the soft-error injection subsystem: FaultPlan scheduling,
 * the per-target injection sites (I-cache, memory, config text), the
 * Machine's structured fault outcomes, and the experiment Runner's
 * retry-with-reload loop. Everything here is seeded, so every expected
 * value is exactly reproducible.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/fault.hh"
#include "common/stats.hh"
#include "exp/experiment.hh"
#include "mibench/mibench.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"

namespace pfits
{
namespace
{

TEST(FaultPlan, DefaultsAreDisarmed)
{
    FaultParams params;
    EXPECT_FALSE(params.enabled());
    FaultPlan plan(params);
    for (uint64_t i = 0; i < 10000; ++i) {
        EXPECT_FALSE(plan.due(FaultTarget::ICACHE, i));
        EXPECT_FALSE(plan.due(FaultTarget::MEMORY, i));
    }
    EXPECT_EQ(plan.totalInjected(), 0u);
}

TEST(FaultPlan, ScheduleIsDeterministic)
{
    FaultParams params;
    params.seed = 0xdecaf;
    params.icacheMeanInterval = 500;
    params.memoryMeanInterval = 1500;
    EXPECT_TRUE(params.enabled());

    FaultPlan a(params), b(params);
    std::vector<uint64_t> hits_a, hits_b;
    for (uint64_t i = 0; i < 200000; ++i) {
        if (a.due(FaultTarget::ICACHE, i))
            hits_a.push_back(i);
        a.due(FaultTarget::MEMORY, i);
        if (b.due(FaultTarget::ICACHE, i))
            hits_b.push_back(i);
        b.due(FaultTarget::MEMORY, i);
    }
    EXPECT_EQ(hits_a, hits_b);
    EXPECT_FALSE(hits_a.empty());
}

TEST(FaultPlan, MeanIntervalIsHonoured)
{
    FaultParams params;
    params.icacheMeanInterval = 1000;
    FaultPlan plan(params);
    uint64_t hits = 0;
    const uint64_t kInstrs = 1000000;
    for (uint64_t i = 0; i < kInstrs; ++i)
        if (plan.due(FaultTarget::ICACHE, i))
            ++hits;
    // Gaps are uniform in [1, 2*mean], so the rate is 1/mean ± noise.
    EXPECT_GT(hits, kInstrs / 1000 / 2);
    EXPECT_LT(hits, kInstrs / 1000 * 2);
}

TEST(FaultPlan, ConfigUpsetsAreNotInstructionTimed)
{
    FaultParams params;
    params.icacheMeanInterval = 10;
    FaultPlan plan(params);
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_FALSE(plan.due(FaultTarget::CONFIG, i));
}

TEST(FaultPlan, CorruptTextBitFlipsExactlyOneBit)
{
    FaultPlan plan(FaultParams{});
    std::string original = "slot 0 mov rd imm8\nchecksum 00\n";
    std::string text = original;
    int64_t bit = plan.corruptTextBit(text);
    ASSERT_GE(bit, 0);
    ASSERT_LT(bit, static_cast<int64_t>(original.size()) * 8);
    size_t diffs = 0;
    for (size_t i = 0; i < original.size(); ++i) {
        unsigned delta = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(text[i]);
        if (delta) {
            ++diffs;
            EXPECT_EQ(delta & (delta - 1), 0u); // power of two: one bit
            EXPECT_EQ(i, static_cast<size_t>(bit) / 8);
        }
    }
    EXPECT_EQ(diffs, 1u);
    EXPECT_EQ(plan.injected(FaultTarget::CONFIG), 1u);

    std::string empty;
    EXPECT_EQ(plan.corruptTextBit(empty), -1);
    EXPECT_EQ(plan.injected(FaultTarget::CONFIG), 1u);
}

TEST(FaultPlan, StatsRegistration)
{
    FaultPlan plan(FaultParams{});
    plan.recordInjected(FaultTarget::ICACHE);
    plan.recordInjected(FaultTarget::ICACHE);
    plan.recordDetected(FaultTarget::ICACHE);
    plan.recordEscaped(FaultTarget::MEMORY);
    StatGroup group("run");
    plan.addStats(group);
    EXPECT_DOUBLE_EQ(group.lookup("faults.icache.injected"), 2.0);
    EXPECT_DOUBLE_EQ(group.lookup("faults.icache.detected"), 1.0);
    EXPECT_DOUBLE_EQ(group.lookup("faults.memory.escaped"), 1.0);
    EXPECT_DOUBLE_EQ(group.lookup("faults.config.injected"), 0.0);
    EXPECT_EQ(plan.totalInjected(), 2u);
    EXPECT_STREQ(faultTargetName(FaultTarget::CONFIG), "config");
}

TEST(Memory, BitFlipInjectionIsDeterministic)
{
    Memory a, b;
    for (uint32_t addr = 0; addr < 64; addr += 4) {
        a.write32(addr, 0x01020304 + addr);
        b.write32(addr, 0x01020304 + addr);
        a.write32(0x50000 + addr, addr); // second page
        b.write32(0x50000 + addr, addr);
    }
    Rng ra(99), rb(99);
    auto hit_a = a.injectBitFlip(ra);
    auto hit_b = b.injectBitFlip(rb);
    ASSERT_TRUE(hit_a.has_value());
    EXPECT_EQ(*hit_a, *hit_b);
    EXPECT_EQ(a.read8(*hit_a), b.read8(*hit_b));

    // Exactly one bit changed relative to the untouched twin.
    Memory clean;
    for (uint32_t addr = 0; addr < 64; addr += 4) {
        clean.write32(addr, 0x01020304 + addr);
        clean.write32(0x50000 + addr, addr);
    }
    unsigned delta = a.read8(*hit_a) ^ clean.read8(*hit_a);
    EXPECT_NE(delta, 0u);
    EXPECT_EQ(delta & (delta - 1), 0u);
}

TEST(Memory, BitFlipIntoEmptyMemoryIsNull)
{
    Memory mem;
    Rng rng(1);
    EXPECT_FALSE(mem.injectBitFlip(rng).has_value());
}

/** Run one MiBench kernel under injection with a chosen I-cache setup. */
RunResult
faultyRun(const char *bench, bool parity, FaultPlan &plan)
{
    mibench::Workload w = mibench::findBench(bench).build();
    ArmFrontEnd fe(w.program);
    CoreConfig core;
    core.icache.parity = parity;
    return Machine(fe, core).run(&plan);
}

TEST(Machine, FaultRunsAreReproducible)
{
    FaultParams params;
    params.seed = 0x5eed;
    params.icacheMeanInterval = 200;
    params.memoryMeanInterval = 2000;
    FaultPlan p1(params), p2(params);
    RunResult r1 = faultyRun("crc32", true, p1);
    RunResult r2 = faultyRun("crc32", true, p2);
    EXPECT_EQ(r1.outcome, r2.outcome);
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.trapReason, r2.trapReason);
    EXPECT_EQ(p1.injected(FaultTarget::ICACHE),
              p2.injected(FaultTarget::ICACHE));
    EXPECT_EQ(p1.detected(FaultTarget::ICACHE),
              p2.detected(FaultTarget::ICACHE));
    EXPECT_GT(p1.totalInjected(), 0u);
}

TEST(Machine, ParityTurnsConsumedFlipsIntoDetections)
{
    FaultParams params;
    params.seed = 0x5eed;
    params.icacheMeanInterval = 100; // aggressive: hit the hot loop
    FaultPlan plan(params);
    RunResult rr = faultyRun("crc32", true, plan);
    // A consumed corrupt line under parity ends the run as a detected
    // fault — never as silent corruption.
    ASSERT_EQ(rr.outcome, RunOutcome::FaultDetected);
    EXPECT_NE(rr.outcome, RunOutcome::Completed);
    EXPECT_NE(rr.trapReason.find("parity"), std::string::npos);
    EXPECT_GE(plan.detected(FaultTarget::ICACHE), 1u);
    EXPECT_EQ(plan.escaped(FaultTarget::ICACHE), 0u);
    EXPECT_GE(rr.icache.parityDetections, 1u);
}

TEST(Machine, WithoutParityConsumedFlipsEscape)
{
    FaultParams params;
    params.seed = 0x5eed;
    params.icacheMeanInterval = 100;
    FaultPlan plan(params);
    RunResult rr = faultyRun("crc32", false, plan);
    // Tags-only cache model: the corruption is accounted (an escape),
    // not acted out, so the run still completes with the right answer.
    EXPECT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_GE(plan.escaped(FaultTarget::ICACHE), 1u);
    EXPECT_EQ(plan.detected(FaultTarget::ICACHE), 0u);
    EXPECT_EQ(rr.icache.corruptDeliveries,
              plan.escaped(FaultTarget::ICACHE));
}

TEST(Runner, FaultSweepIsDeterministicAndBounded)
{
    ExperimentParams params;
    params.faults.icacheMeanInterval = 500;
    params.faults.memoryMeanInterval = 50000;
    params.core.icache.parity = true;
    params.faultRetries = 2;

    Runner r1(params), r2(params);
    const BenchResult &a = r1.get("crc32");
    const BenchResult &b = r2.get("crc32");
    for (ConfigId id : kAllConfigs) {
        const ConfigResult &ca = a.of(id);
        const ConfigResult &cb = b.of(id);
        EXPECT_EQ(ca.run.outcome, cb.run.outcome) << configName(id);
        EXPECT_EQ(ca.run.instructions, cb.run.instructions)
            << configName(id);
        EXPECT_EQ(ca.faultRetries, cb.faultRetries) << configName(id);
        EXPECT_EQ(ca.checksumOk, cb.checksumOk) << configName(id);
        EXPECT_LE(ca.faultRetries, params.faultRetries);
    }
}

TEST(Runner, CleanRunStillPassesGoldenChecksum)
{
    // Faults disabled (the default): every config of a kernel completes
    // and matches the golden output, and consumes no retries.
    Runner runner;
    const BenchResult &res = runner.get("crc32");
    for (ConfigId id : kAllConfigs) {
        const ConfigResult &cfg = res.of(id);
        EXPECT_EQ(cfg.run.outcome, RunOutcome::Completed)
            << configName(id);
        EXPECT_TRUE(cfg.checksumOk) << configName(id);
        EXPECT_EQ(cfg.faultRetries, 0u) << configName(id);
    }
}

} // namespace
} // namespace pfits
