/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace pfits
{
namespace
{

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeefu, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeefu, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeefu, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(bits(0xffffffffu, 0, 0), 1u);
}

TEST(Bitops, InsertBitsRoundTrips)
{
    uint32_t word = 0;
    word = insertBits(word, 31, 28, 0xe);
    word = insertBits(word, 27, 25, 0x5);
    EXPECT_EQ(bits(word, 31, 28), 0xeu);
    EXPECT_EQ(bits(word, 27, 25), 0x5u);
    // Overwriting a field must not disturb neighbours.
    word = insertBits(word, 27, 25, 0x2);
    EXPECT_EQ(bits(word, 31, 28), 0xeu);
    EXPECT_EQ(bits(word, 27, 25), 0x2u);
}

TEST(Bitops, InsertBitsMasksOversizedField)
{
    uint32_t word = insertBits(0, 3, 0, 0xffu);
    EXPECT_EQ(word, 0xfu);
}

TEST(Bitops, SextSignExtends)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x800000, 24), -8388608);
    EXPECT_EQ(sext(0x0, 8), 0);
    EXPECT_EQ(sext(0xdeadbeef, 32),
              static_cast<int32_t>(0xdeadbeefu));
}

TEST(Bitops, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(15, 4));
    EXPECT_FALSE(fitsUnsigned(16, 4));
    EXPECT_TRUE(fitsUnsigned(0, 1));
    EXPECT_TRUE(fitsUnsigned(0xffffffffu, 32));
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(-8, 4));
    EXPECT_TRUE(fitsSigned(7, 4));
    EXPECT_FALSE(fitsSigned(8, 4));
    EXPECT_FALSE(fitsSigned(-9, 4));
    EXPECT_TRUE(fitsSigned(-2048, 12));
}

TEST(Bitops, Rotates)
{
    EXPECT_EQ(rotr32(0x1u, 1), 0x80000000u);
    EXPECT_EQ(rotl32(0x80000000u, 1), 0x1u);
    EXPECT_EQ(rotr32(0xdeadbeefu, 0), 0xdeadbeefu);
    for (unsigned amount = 0; amount < 32; ++amount) {
        EXPECT_EQ(rotl32(rotr32(0xcafef00du, amount), amount),
                  0xcafef00du);
    }
}

TEST(Bitops, PopcountAndHamming)
{
    EXPECT_EQ(popcount32(0), 0u);
    EXPECT_EQ(popcount32(0xffffffffu), 32u);
    EXPECT_EQ(popcount32(0xa5a5a5a5u), 16u);
    EXPECT_EQ(hamming32(0, 0xffffffffu), 32u);
    EXPECT_EQ(hamming32(0x1234u, 0x1234u), 0u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(16384));
    EXPECT_FALSE(isPow2(24));
}

TEST(Bitops, ArmImmediateRecognizesRotatedBytes)
{
    EXPECT_TRUE(isArmImmediate(0xff));
    EXPECT_TRUE(isArmImmediate(0xff000000u));
    EXPECT_TRUE(isArmImmediate(0x3fc));     // 0xff << 2
    EXPECT_TRUE(isArmImmediate(0x40000));   // 1 << 18
    EXPECT_FALSE(isArmImmediate(0x101));
    EXPECT_FALSE(isArmImmediate(0xffff));
    EXPECT_TRUE(isArmImmediate(0));
}

TEST(Bitops, EncodeArmImmediateRoundTrips)
{
    for (uint32_t base : {0x1u, 0xffu, 0x80u, 0x55u}) {
        for (unsigned rot = 0; rot < 32; rot += 2) {
            uint32_t value = rotr32(base, rot);
            uint32_t imm8, out_rot;
            ASSERT_TRUE(encodeArmImmediate(value, imm8, out_rot))
                << value;
            EXPECT_EQ(rotr32(imm8, out_rot), value);
        }
    }
    uint32_t imm8, rot;
    EXPECT_FALSE(encodeArmImmediate(0x12345678u, imm8, rot));
}

} // namespace
} // namespace pfits
