/** @file The parallel experiment engine: thread-pool semantics,
 *  memoized simulation, and the headline guarantee — a sweep's table
 *  output is byte-identical at --jobs 1, --jobs 4 and --jobs
 *  hardware_concurrency, and an identical second sweep performs zero
 *  fresh simulations. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "exp/experiment.hh"
#include "exp/figures.hh"
#include "exp/parallel.hh"
#include "exp/simcache.hh"
#include "mibench/mibench.hh"

namespace pfits
{
namespace
{

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(jobs);
        EXPECT_EQ(pool.jobs(), jobs);
        std::vector<std::atomic<int>> hits(257);
        pool.run(hits.size(),
                 [&](size_t i) { hits[i].fetch_add(1); });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, CollectsResultsByIndexNotCompletionOrder)
{
    ThreadPool pool(4);
    auto out = parallelMap<size_t>(pool, 100, [](size_t i) {
        // Stagger job durations so completion order scrambles.
        volatile size_t sink = 0;
        for (size_t k = 0; k < (i % 7) * 10000; ++k)
            sink = sink + k;
        return i * i;
    });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, RethrowsLowestIndexException)
{
    ThreadPool pool(4);
    try {
        pool.run(64, [](size_t i) {
            if (i == 7 || i == 23)
                throw std::runtime_error("job " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7");
    }
    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    pool.run(8, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, RunCollectReportsEveryFailureAsStructuredData)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    auto failures = pool.runCollect(64, [&](size_t i) {
        ran.fetch_add(1);
        if (i == 3)
            throw std::runtime_error("boom 3");
        if (i == 41)
            throw 17; // non-std::exception payloads are captured too
    });

    // Every job ran despite the failures — no early abandonment.
    EXPECT_EQ(ran.load(), 64);

    ASSERT_EQ(failures.size(), 2u);
    // Sorted by job index, with the thrown message preserved.
    EXPECT_EQ(failures[0].index, 3u);
    EXPECT_EQ(failures[0].message, "boom 3");
    EXPECT_EQ(failures[1].index, 41u);
    EXPECT_EQ(failures[1].message, "unknown exception");

    // A clean batch reports nothing, and the pool is reusable.
    auto clean = pool.runCollect(8, [](size_t) {});
    EXPECT_TRUE(clean.empty());
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    uint64_t total = 0;
    for (int batch = 0; batch < 10; ++batch) {
        std::vector<uint64_t> vals(50);
        pool.run(vals.size(), [&](size_t i) { vals[i] = i + 1; });
        total += std::accumulate(vals.begin(), vals.end(), 0ull);
    }
    EXPECT_EQ(total, 10u * (50u * 51u / 2u));
}

TEST(ThreadPool, ParseJobsFlagForms)
{
    const char *a1[] = {"prog", "--jobs", "6"};
    EXPECT_EQ(parseJobsFlag(3, const_cast<char **>(a1)), 6u);
    const char *a2[] = {"prog", "--jobs=12"};
    EXPECT_EQ(parseJobsFlag(2, const_cast<char **>(a2)), 12u);
    const char *a3[] = {"prog", "-j3"};
    EXPECT_EQ(parseJobsFlag(2, const_cast<char **>(a3)), 3u);
    const char *a4[] = {"prog", "--csv"};
    EXPECT_EQ(parseJobsFlag(2, const_cast<char **>(a4)), 0u);
    const char *a5[] = {"prog", "--jobs", "0"};
    EXPECT_EQ(parseJobsFlag(3, const_cast<char **>(a5)), 1u);
    EXPECT_GE(defaultJobs(), 1u);
}

// --- memoization cache -----------------------------------------------------

TEST(SimCache, KeyCoversProgramConfigAndFaultSeed)
{
    SimCache &cache = SimCache::instance();
    cache.clear();

    mibench::Workload wl = mibench::buildCrc32();
    ArmFrontEnd fe(std::move(wl.program));
    CoreConfig core;

    SimResult first = cache.simulate(fe, core);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Identical request: a hit, and the identical result.
    SimResult again = cache.simulate(fe, core);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(again.run.cycles, first.run.cycles);
    EXPECT_EQ(again.run.instructions, first.run.instructions);

    // A timing-relevant config change is a different key.
    CoreConfig small = core;
    small.icache.sizeBytes = 8 * 1024;
    cache.simulate(fe, small);
    EXPECT_EQ(cache.misses(), 2u);

    // Arming a fault plan (seed is part of the key) is a fresh key.
    FaultParams faults;
    faults.icacheMeanInterval = 50'000;
    cache.simulate(fe, core, faults, 3);
    EXPECT_EQ(cache.misses(), 3u);
    cache.simulate(fe, core, faults, 3);
    EXPECT_EQ(cache.misses(), 3u); // same seed: memoized

    faults.seed ^= 0xdecafull;
    cache.simulate(fe, core, faults, 3);
    EXPECT_EQ(cache.misses(), 4u);

    EXPECT_EQ(cache.entries(), 4u);
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(SimCache, LruBoundEvictsColdEntriesAndCountsThem)
{
    SimCache &cache = SimCache::instance();
    cache.clear();
    cache.setMaxEntries(2);

    mibench::Workload wl = mibench::buildCrc32();
    ArmFrontEnd fe(std::move(wl.program));

    CoreConfig a, b, c;
    a.icache.sizeBytes = 16 * 1024;
    b.icache.sizeBytes = 8 * 1024;
    c.icache.sizeBytes = 4 * 1024;

    cache.simulate(fe, a);
    cache.simulate(fe, b);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    // Touch A so B is the LRU victim when C overflows the budget.
    cache.simulate(fe, a);
    cache.simulate(fe, c);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    // A stayed resident (hit); B was evicted (fresh miss re-simulates).
    uint64_t misses = cache.misses();
    cache.simulate(fe, a);
    EXPECT_EQ(cache.misses(), misses);
    cache.simulate(fe, b);
    EXPECT_EQ(cache.misses(), misses + 1);

    cache.setMaxEntries(0); // unbounded again for the other tests
    cache.clear();
}

TEST(SimCache, TryGetAndSeedRoundTrip)
{
    SimCache &cache = SimCache::instance();
    cache.clear();

    mibench::Workload wl = mibench::buildCrc32();
    ArmFrontEnd fe(std::move(wl.program));
    CoreConfig core;
    SimCacheKey key{hashFrontEnd(fe), hashCoreConfig(core),
                    hashFaultParams({}, 0), hashObserverSpec({})};

    // Absent: tryGet must not compute, count, or block.
    EXPECT_FALSE(cache.tryGet(key).has_value());
    EXPECT_EQ(cache.misses(), 0u);

    SimResult real = cache.simulate(fe, core);
    auto probed = cache.tryGet(key);
    ASSERT_TRUE(probed.has_value());
    EXPECT_EQ(probed->run.cycles, real.run.cycles);

    // Seeding an occupied key is a no-op…
    SimResult bogus;
    bogus.run.cycles = 1;
    EXPECT_FALSE(cache.seed(key, bogus));
    EXPECT_EQ(cache.tryGet(key)->run.cycles, real.run.cycles);

    // …and seeding a fresh key makes the result resident, exactly as
    // if it had been simulated here (the pfitsd-hit path).
    cache.clear();
    EXPECT_TRUE(cache.seed(key, real));
    EXPECT_EQ(cache.entries(), 1u);
    uint64_t misses = cache.misses();
    SimResult served = cache.simulate(fe, core);
    EXPECT_EQ(cache.misses(), misses) << "seeded key must hit";
    EXPECT_EQ(served.run.cycles, real.run.cycles);
    cache.clear();
}

// --- the engine end to end -------------------------------------------------

/** One sweep's CSV fingerprint: two figure tables over the suite. */
std::string
sweepCsv(unsigned jobs)
{
    ExperimentParams params;
    params.jobs = jobs;
    Runner runner(params);
    std::ostringstream os;
    fig13MissRate(runner).printCsv(os);
    fig14Ipc(runner).printCsv(os);
    return os.str();
}

TEST(ParallelExp, SweepOutputByteIdenticalAcrossJobCounts)
{
    SimCache::instance().clear();
    std::string serial = sweepCsv(1);

    SimCache::instance().clear();
    std::string four = sweepCsv(4);

    SimCache::instance().clear();
    std::string hardware = sweepCsv(0); // shared pool: defaultJobs()

    EXPECT_EQ(serial, four);
    EXPECT_EQ(serial, hardware);
    EXPECT_FALSE(serial.empty());
}

TEST(ParallelExp, SecondSweepPerformsZeroFreshSimulations)
{
    SimCache &cache = SimCache::instance();
    cache.clear();

    ExperimentParams params;
    params.jobs = 4;
    Runner first(params);
    first.all();
    const uint64_t misses_after_first = cache.misses();
    // 21 benchmarks × 4 configurations, every one a fresh simulation.
    EXPECT_EQ(misses_after_first, 21u * 4u);

    Runner second(params);
    second.all();
    EXPECT_EQ(cache.misses(), misses_after_first)
        << "an identical sweep must be served entirely from the cache";
    EXPECT_GE(cache.hits(), 21u * 4u);
}

TEST(ParallelExp, RunnerIsThreadSafeForConcurrentGets)
{
    SimCache::instance().clear();
    ExperimentParams params;
    params.jobs = 1; // sims serial; outer threads race get()
    Runner runner(params);
    const char *names[] = {"crc32", "sha", "crc32", "sha"};
    std::vector<const BenchResult *> seen(4);
    ThreadPool outer(4);
    outer.run(4, [&](size_t i) { seen[i] = &runner.get(names[i]); });
    EXPECT_EQ(seen[0], seen[2]) << "same bench must memoize";
    EXPECT_EQ(seen[1], seen[3]);
    EXPECT_EQ(seen[0]->name, "crc32");
    EXPECT_EQ(seen[1]->name, "sha");
}

} // namespace
} // namespace pfits
