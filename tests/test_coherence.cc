/** @file Directed MSI protocol tests over CoherentL2 with fake tile
 *  ports, plus a fixed-seed multi-tile fuzz. The directed half walks
 *  the full transition table — {Modified, Shared, Invalid} crossed
 *  with {local read, local write, remote read, remote write,
 *  eviction} — asserting directory snapshots, protocol counters and
 *  the event stream. The fuzz drives four tiles over deliberately
 *  overlapping addresses (the Chip's coloring never does this, so the
 *  sharing edges only get exercised here) and checks the single-writer
 *  invariant plus final-memory agreement with a coherence-free
 *  sequential reference. */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "cache/coherence.hh"
#include "common/rng.hh"

namespace pfits
{
namespace
{

/**
 * A fake tile: mirrors what a private L1 would hold, line by line,
 * with the dirty value carried alongside (nullopt = clean copy). Dirty
 * data recalled by the directory lands in *backing — the flat "L2 +
 * memory" image the fuzz compares against its reference model.
 */
class MirrorPort final : public CoherencePort
{
  public:
    std::map<uint32_t, std::optional<uint32_t>> lines;
    std::map<uint32_t, uint32_t> *backing = nullptr;
    unsigned invalidates = 0;
    unsigned downgrades = 0;

    bool holds(uint32_t la) const { return lines.count(la) != 0; }

    bool
    dirty(uint32_t la) const
    {
        auto it = lines.find(la);
        return it != lines.end() && it->second.has_value();
    }

    bool
    coherenceInvalidate(uint32_t la) override
    {
        ++invalidates;
        auto it = lines.find(la);
        if (it == lines.end())
            return false;
        const bool was_dirty = it->second.has_value();
        if (was_dirty && backing)
            (*backing)[la] = *it->second;
        lines.erase(it);
        return was_dirty;
    }

    bool
    coherenceDowngrade(uint32_t la) override
    {
        ++downgrades;
        auto it = lines.find(la);
        if (it == lines.end())
            return false;
        const bool was_dirty = it->second.has_value();
        if (was_dirty && backing)
            (*backing)[la] = *it->second;
        it->second = std::nullopt;
        return was_dirty;
    }

    void
    enumerateLines(
        const std::function<void(uint32_t, bool)> &fn) const override
    {
        for (const auto &[la, v] : lines)
            fn(la, v.has_value());
    }
};

/** Records the event stream for cross-checking against the stats. */
class EventLog final : public CoherenceListener
{
  public:
    std::vector<CoherenceEvent> events;

    void
    onCoherence(const CoherenceEvent &event) override
    {
        events.push_back(event);
    }

    unsigned
    count(CoherenceEvent::Kind kind) const
    {
        unsigned n = 0;
        for (const CoherenceEvent &e : events)
            if (e.kind == kind)
                ++n;
        return n;
    }
};

constexpr uint32_t kLine = 32;

/**
 * Two fake tiles on one CoherentL2, with the L1-side protocol calls a
 * real Tile would make reproduced over the mirrors: an access that
 * hits a held line never reaches the L2, a write to a held clean line
 * is the S->M upgrade, a miss is a fill, and an eviction either drops
 * a clean copy silently or pushes a dirty one via l1Writeback.
 */
struct Duo
{
    CoherentL2 l2;
    MirrorPort port[2];
    EventLog log;

    explicit Duo(const CoherentL2::Params &params = bigParams())
        : l2(params, 2)
    {
        l2.attachPort(0, &port[0]);
        l2.attachPort(1, &port[1]);
        l2.setListener(&log);
    }

    /** Roomy default: no capacity back-invalidations unless asked. */
    static CoherentL2::Params
    bigParams()
    {
        CoherentL2::Params p;
        p.cache = CacheConfig{"l2", 4096, 2, kLine, ReplPolicy::LRU,
                              true};
        return p;
    }

    void
    read(unsigned t, uint32_t la)
    {
        if (port[t].holds(la))
            return; // L1 hit: no protocol action
        l2.accessFill(t, la, false);
        port[t].lines[la] = std::nullopt;
    }

    unsigned
    write(unsigned t, uint32_t la, uint32_t value)
    {
        unsigned penalty = 0;
        if (port[t].dirty(la)) {
            // L1 write hit on an owned line: no protocol action.
        } else if (port[t].holds(la)) {
            penalty = l2.upgradeForWrite(t, la);
        } else {
            penalty = l2.accessFill(t, la, true);
        }
        port[t].lines[la] = value;
        return penalty;
    }

    void
    evict(unsigned t, uint32_t la)
    {
        if (!port[t].holds(la))
            return; // evicting a line the L1 does not hold is vacuous
        if (port[t].dirty(la))
            l2.l1Writeback(t, la);
        // A clean victim drops silently: the directory keeps the stale
        // sharer bit as a conservative superset.
        port[t].lines.erase(la);
    }
};

TEST(MsiDirectory, TransitionsFromInvalid)
{
    Duo duo;
    const uint32_t a = 0x100, b = 0x200, c = 0x300, d = 0x400;

    // I + local read -> Shared{0}.
    duo.read(0, a);
    auto snap = duo.l2.dirEntry(a);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, MsiState::Shared);
    EXPECT_EQ(snap->sharers, 0b01u);

    // I + local write -> Modified{0}.
    duo.write(0, b, 7);
    snap = duo.l2.dirEntry(b);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, MsiState::Modified);
    EXPECT_EQ(snap->sharers, 0b01u);

    // I + remote read / remote write: same edges from the other tile.
    duo.read(1, c);
    snap = duo.l2.dirEntry(c);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, MsiState::Shared);
    EXPECT_EQ(snap->sharers, 0b10u);

    duo.write(1, d, 9);
    snap = duo.l2.dirEntry(d);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, MsiState::Modified);
    EXPECT_EQ(snap->sharers, 0b10u);

    // I + eviction: the L1 holds nothing, so nothing happens.
    const CoherenceStats before = duo.l2.stats();
    duo.evict(0, 0x500);
    EXPECT_EQ(duo.l2.stats().l1Writebacks, before.l1Writebacks);
    EXPECT_EQ(duo.l2.stats().invalidations, before.invalidations);

    EXPECT_EQ(duo.l2.stats().readFills, 2u);
    EXPECT_EQ(duo.l2.stats().writeFills, 2u);
    EXPECT_EQ(duo.l2.checkInvariants(), "");
}

TEST(MsiDirectory, TransitionsFromShared)
{
    Duo duo;
    const uint32_t a = 0x100, b = 0x200, c = 0x300;
    duo.read(0, a); // -> Shared{0}

    // S + local read: an L1 hit, no directory interaction.
    const CoherenceStats quiet = duo.l2.stats();
    duo.read(0, a);
    EXPECT_EQ(duo.l2.stats().readFills, quiet.readFills);
    EXPECT_EQ(duo.l2.dirEntry(a)->sharers, 0b01u);

    // S + remote read: the reader joins the sharer vector, nobody is
    // invalidated or downgraded.
    duo.read(1, a);
    auto snap = duo.l2.dirEntry(a);
    EXPECT_EQ(snap->state, MsiState::Shared);
    EXPECT_EQ(snap->sharers, 0b11u);
    EXPECT_EQ(duo.l2.stats().invalidations, 0u);
    EXPECT_EQ(duo.l2.stats().downgrades, 0u);

    // S + local write with a remote sharer: the S->M upgrade kills the
    // remote clean copy and costs the upgrade penalty.
    unsigned penalty = duo.write(0, a, 5);
    EXPECT_EQ(penalty, Duo::bigParams().upgradePenalty);
    snap = duo.l2.dirEntry(a);
    EXPECT_EQ(snap->state, MsiState::Modified);
    EXPECT_EQ(snap->sharers, 0b01u);
    EXPECT_FALSE(duo.port[1].holds(a));
    EXPECT_EQ(duo.l2.stats().upgrades, 1u);
    EXPECT_EQ(duo.l2.stats().invalidations, 1u);
    EXPECT_EQ(duo.l2.stats().recallWritebacks, 0u); // clean recall

    // S + local write with no remote copy: a free upgrade.
    duo.read(0, b);
    penalty = duo.write(0, b, 6);
    EXPECT_EQ(penalty, 0u);
    EXPECT_EQ(duo.l2.stats().invalidations, 1u);
    EXPECT_EQ(duo.l2.dirEntry(b)->state, MsiState::Modified);

    // S + remote write: the writer's fill invalidates the clean local
    // copy (nothing dirty to recall).
    duo.read(0, c);
    duo.write(1, c, 8);
    snap = duo.l2.dirEntry(c);
    EXPECT_EQ(snap->state, MsiState::Modified);
    EXPECT_EQ(snap->sharers, 0b10u);
    EXPECT_FALSE(duo.port[0].holds(c));
    EXPECT_EQ(duo.l2.stats().recallWritebacks, 0u);

    // S + eviction: a clean victim drops silently; the stale sharer
    // bit is legal (the directory is a conservative superset) and the
    // invariants still hold.
    duo.read(1, b); // b: Modified{0} -> downgrade -> Shared{0,1}
    duo.evict(1, b);
    EXPECT_EQ(duo.l2.dirEntry(b)->sharers, 0b11u);
    EXPECT_EQ(duo.l2.checkInvariants(), "");
}

TEST(MsiDirectory, TransitionsFromModified)
{
    Duo duo;
    const uint32_t a = 0x100, b = 0x200, c = 0x300;
    std::map<uint32_t, uint32_t> mem;
    duo.port[0].backing = &mem;
    duo.port[1].backing = &mem;

    duo.write(0, a, 41); // -> Modified{0}

    // M + local read / local write: owner hits, no protocol action.
    const CoherenceStats quiet = duo.l2.stats();
    duo.read(0, a);
    duo.write(0, a, 42);
    EXPECT_EQ(duo.l2.stats().readFills, quiet.readFills);
    EXPECT_EQ(duo.l2.stats().upgrades, quiet.upgrades);
    EXPECT_EQ(duo.l2.dirEntry(a)->state, MsiState::Modified);

    // M + remote read: the owner is downgraded, its dirty data
    // recalled, and both tiles end up sharing.
    duo.read(1, a);
    auto snap = duo.l2.dirEntry(a);
    EXPECT_EQ(snap->state, MsiState::Shared);
    EXPECT_EQ(snap->sharers, 0b11u);
    EXPECT_TRUE(duo.port[0].holds(a));
    EXPECT_FALSE(duo.port[0].dirty(a));
    EXPECT_EQ(duo.l2.stats().downgrades, 1u);
    EXPECT_EQ(duo.l2.stats().recallWritebacks, 1u);
    EXPECT_EQ(mem[a], 42u); // the recall carried the dirty value

    // M + remote write: the owner is invalidated with a dirty recall,
    // the writer becomes the sole owner.
    duo.write(0, b, 51);
    duo.write(1, b, 52);
    snap = duo.l2.dirEntry(b);
    EXPECT_EQ(snap->state, MsiState::Modified);
    EXPECT_EQ(snap->sharers, 0b10u);
    EXPECT_FALSE(duo.port[0].holds(b));
    EXPECT_EQ(duo.l2.stats().invalidations, 1u);
    EXPECT_EQ(duo.l2.stats().recallWritebacks, 2u);
    EXPECT_EQ(mem[b], 51u);

    // M + eviction: the dirty victim lands in the L2 via l1Writeback;
    // the last leaver drops the entry to Invalid.
    duo.write(0, c, 61);
    duo.evict(0, c);
    snap = duo.l2.dirEntry(c);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, MsiState::Invalid);
    EXPECT_EQ(snap->sharers, 0u);
    EXPECT_EQ(duo.l2.stats().l1Writebacks, 1u);
    EXPECT_EQ(duo.l2.checkInvariants(), "");
}

TEST(MsiDirectory, BackInvalidationRecallsInclusiveCopies)
{
    // A one-set L2: any two distinct lines conflict, so the second
    // fill back-invalidates the first line's L1 copies.
    CoherentL2::Params params;
    params.cache =
        CacheConfig{"l2", kLine, 1, kLine, ReplPolicy::LRU, true};
    Duo duo(params);
    std::map<uint32_t, uint32_t> mem;
    duo.port[0].backing = &mem;

    // Dirty copy recalled straight to memory when its L2 line leaves.
    duo.write(0, 0x000, 71);
    duo.read(1, 0x100);
    EXPECT_FALSE(duo.port[0].holds(0x000));
    EXPECT_FALSE(duo.l2.dirEntry(0x000).has_value());
    EXPECT_EQ(duo.l2.stats().backInvalidations, 1u);
    EXPECT_EQ(duo.l2.stats().recallWritebacks, 1u);
    EXPECT_EQ(duo.l2.stats().l2Writebacks, 1u);
    EXPECT_EQ(mem[0x000], 71u);

    // Self back-invalidation: a tile's own fill can evict another of
    // its lines from the L2, recalling its own clean copy.
    duo.read(0, 0x200);
    EXPECT_FALSE(duo.port[1].holds(0x100));
    duo.read(0, 0x300);
    EXPECT_FALSE(duo.port[0].holds(0x200));
    EXPECT_TRUE(duo.port[0].holds(0x300));
    EXPECT_EQ(duo.l2.checkInvariants(), "");
}

TEST(MsiDirectory, EventStreamMatchesCounters)
{
    Duo duo;
    std::map<uint32_t, uint32_t> mem;
    duo.port[0].backing = &mem;
    duo.port[1].backing = &mem;

    duo.read(0, 0x100);       // read fill
    duo.write(0, 0x100, 1);   // upgrade (no remote copy)
    duo.read(1, 0x100);       // downgrade + read fill
    duo.write(1, 0x100, 2);   // invalidate + upgrade
    duo.write(0, 0x200, 3);   // write fill
    duo.evict(1, 0x100);      // l1 writeback

    const CoherenceStats &s = duo.l2.stats();
    using K = CoherenceEvent::Kind;
    EXPECT_EQ(duo.log.count(K::ReadFill), s.readFills);
    EXPECT_EQ(duo.log.count(K::WriteFill), s.writeFills);
    EXPECT_EQ(duo.log.count(K::Upgrade), s.upgrades);
    EXPECT_EQ(duo.log.count(K::Invalidate), s.invalidations);
    EXPECT_EQ(duo.log.count(K::Downgrade), s.downgrades);
    EXPECT_EQ(duo.log.count(K::BackInvalidate), s.backInvalidations);
    EXPECT_EQ(duo.log.count(K::L1Writeback), s.l1Writebacks);
    EXPECT_EQ(s.readFills, 2u);
    EXPECT_EQ(s.writeFills, 1u);
    EXPECT_EQ(s.upgrades, 2u);
    EXPECT_EQ(s.invalidations, 1u);
    EXPECT_EQ(s.downgrades, 1u);
    EXPECT_EQ(s.l1Writebacks, 1u);
}

/**
 * The fuzz: four mirror tiles issue a fixed-seed random stream of
 * reads, writes and evictions over 48 overlapping lines against a
 * 32-line L2, so capacity back-invalidations, upgrades, downgrades
 * and dirty recalls all fire constantly. Invariants checked:
 *
 *  - every read observes the value a sequential coherence-free
 *    reference model holds for that line (stale data = a protocol
 *    hole, e.g. a missing downgrade);
 *  - at most one tile holds any line dirty, and
 *    CoherentL2::checkInvariants stays clean throughout;
 *  - after a final flush the backing image equals the reference.
 */
TEST(MsiDirectory, FuzzMultiTileAgainstSequentialReference)
{
    constexpr unsigned kTiles = 4;
    constexpr unsigned kPoolLines = 48;
    constexpr unsigned kOps = 6000;

    CoherentL2::Params params;
    params.cache =
        CacheConfig{"l2", 1024, 2, kLine, ReplPolicy::LRU, true};
    CoherentL2 l2(params, kTiles);

    std::map<uint32_t, uint32_t> mem; // flat "L2 + memory" data image
    MirrorPort ports[kTiles];
    for (unsigned t = 0; t < kTiles; ++t) {
        ports[t].backing = &mem;
        l2.attachPort(t, &ports[t]);
    }

    std::map<uint32_t, uint32_t> ref; // coherence-free reference
    Rng rng(0xc0fe5eed);
    uint32_t next_value = 1;

    for (unsigned op = 0; op < kOps; ++op) {
        const unsigned t = rng.below(kTiles);
        MirrorPort &port = ports[t];
        const uint32_t la = kLine * rng.below(kPoolLines);

        switch (rng.below(4)) {
          case 0:
          case 1: { // read
            uint32_t seen;
            if (port.dirty(la)) {
                seen = *port.lines[la];
            } else if (port.holds(la)) {
                seen = mem.count(la) ? mem[la] : 0;
            } else {
                l2.accessFill(t, la, false);
                port.lines[la] = std::nullopt;
                seen = mem.count(la) ? mem[la] : 0;
            }
            ASSERT_EQ(seen, ref.count(la) ? ref[la] : 0)
                << "op " << op << ": tile " << t
                << " read stale data from line " << std::hex << la;
            break;
          }
          case 2: { // write
            const uint32_t v = next_value++;
            if (!port.dirty(la)) {
                if (port.holds(la))
                    l2.upgradeForWrite(t, la);
                else
                    l2.accessFill(t, la, true);
            }
            port.lines[la] = v;
            ref[la] = v;
            break;
          }
          case 3: { // evict a random held line
            if (port.lines.empty())
                break;
            auto it = port.lines.begin();
            std::advance(
                it,
                rng.below(static_cast<uint32_t>(port.lines.size())));
            const uint32_t victim = it->first;
            if (it->second.has_value()) {
                mem[victim] = *it->second;
                l2.l1Writeback(t, victim);
            }
            port.lines.erase(it);
            break;
          }
        }

        if (op % 64 == 0) {
            ASSERT_EQ(l2.checkInvariants(), "") << "op " << op;
            // Single-writer, counted by hand across the mirrors.
            std::map<uint32_t, unsigned> dirty_holders;
            for (const MirrorPort &p : ports)
                for (const auto &[line, v] : p.lines)
                    if (v.has_value())
                        ++dirty_holders[line];
            for (const auto &[line, n] : dirty_holders)
                ASSERT_LE(n, 1u)
                    << "op " << op << ": line " << std::hex << line
                    << " dirty in " << std::dec << n << " tiles";
        }
    }

    ASSERT_EQ(l2.checkInvariants(), "");

    // Flush every surviving dirty copy, then the protocol-maintained
    // image must equal the sequential reference line for line.
    for (unsigned t = 0; t < kTiles; ++t) {
        for (const auto &[la, v] : ports[t].lines)
            if (v.has_value()) {
                mem[la] = *v;
                l2.l1Writeback(t, la);
            }
        ports[t].lines.clear();
    }
    for (unsigned i = 0; i < kPoolLines; ++i) {
        const uint32_t la = kLine * i;
        EXPECT_EQ(mem.count(la) ? mem[la] : 0,
                  ref.count(la) ? ref[la] : 0)
            << "final image differs at line " << std::hex << la;
    }
    EXPECT_GT(l2.stats().backInvalidations, 0u);
    EXPECT_GT(l2.stats().downgrades, 0u);
    EXPECT_GT(l2.stats().upgrades, 0u);
}

} // namespace
} // namespace pfits
