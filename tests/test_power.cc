/** @file Unit and property tests for the cache and chip power models. */

#include <gtest/gtest.h>

#include "power/cache_power.hh"
#include "power/chip_power.hh"

namespace pfits
{
namespace
{

CacheConfig
cacheOf(uint32_t bytes)
{
    CacheConfig cfg;
    cfg.name = "icache";
    cfg.sizeBytes = bytes;
    cfg.assoc = 32;
    cfg.lineBytes = 32;
    return cfg;
}

RunResult
syntheticRun(uint64_t instrs, unsigned fetch_bits, uint64_t misses,
             uint64_t extra_cycles = 0)
{
    RunResult rr;
    rr.instructions = instrs;
    rr.cycles = instrs + extra_cycles;
    rr.clockHz = 200e6;
    rr.icache.reads = instrs;
    rr.icache.readMisses = misses;
    rr.fetchBitsTotal = instrs * fetch_bits;
    rr.fetchToggleBits = rr.fetchBitsTotal / 3;
    rr.icacheRefillWords = misses * 8;
    rr.dmemAccesses = instrs / 4;
    return rr;
}

TEST(CachePower, GeometryDerivedQuantities)
{
    CachePowerModel model(cacheOf(16 * 1024), TechParams{});
    EXPECT_EQ(model.rows(), 16u);
    EXPECT_EQ(model.cols(), 32u * 32 * 8);
    EXPECT_EQ(model.cellBits(), 16u * 1024 * 8);
    EXPECT_EQ(model.tagBits(), 32u - 5 - 4);
}

TEST(CachePower, InternalEnergyScalesWithSize)
{
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double ratio = small.internalEnergyPerAccess() /
                   big.internalEnergyPerAccess();
    // Bitlines halve; wordline/sense periphery does not: the ratio must
    // land in the regime that reproduces the paper's ~43% internal
    // saving for a half-sized cache.
    EXPECT_GT(ratio, 0.50);
    EXPECT_LT(ratio, 0.65);
}

TEST(CachePower, ParityColumnCostsEnergy)
{
    TechParams tech;
    CacheConfig plain = cacheOf(16 * 1024);
    CacheConfig protectedCfg = plain;
    protectedCfg.parity = true;
    CachePowerModel unguarded(plain, tech);
    CachePowerModel guarded(protectedCfg, tech);

    // One parity bit per line: 512 extra cells, one extra sense column
    // per way — strictly more energy everywhere, but only slightly
    // (the array is 128 Kibit, parity adds 512 bits).
    EXPECT_EQ(guarded.parityBits(), plain.numLines());
    EXPECT_EQ(unguarded.parityBits(), 0u);
    EXPECT_GT(guarded.internalEnergyPerAccess(),
              unguarded.internalEnergyPerAccess());
    EXPECT_LT(guarded.internalEnergyPerAccess(),
              unguarded.internalEnergyPerAccess() * 1.05);

    RunResult rr = syntheticRun(1000000, 32, 500);
    double with = guarded.evaluate(rr).totalJ();
    double without = unguarded.evaluate(rr).totalJ();
    EXPECT_GT(with, without);
    EXPECT_LT(with, without * 1.05);
}

TEST(CachePower, LeakageScalesWeakly)
{
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double ratio = small.leakagePower() / big.leakagePower();
    // Column periphery is size-independent: the paper's ~15% leakage
    // saving for the half-sized cache pins this ratio near 0.85.
    EXPECT_GT(ratio, 0.80);
    EXPECT_LT(ratio, 0.90);
}

TEST(CachePower, CalibrationPointMatchesStrongArm)
{
    // ARM16 at the calibration point: ~1.0 access/cycle at 200 MHz must
    // land near the StrongARM's measured I-cache power (~27% of 330mW)
    // with the paper's Figure 6 breakdown: internal > 50%, switching
    // ~30-45%, leakage < 10%.
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    RunResult rr = syntheticRun(2'000'000, 32, 100);
    CachePowerBreakdown power = model.evaluate(rr);
    EXPECT_GT(power.totalW(), 0.050);
    EXPECT_LT(power.totalW(), 0.130);
    EXPECT_GT(power.internalShare(), 0.50);
    EXPECT_GT(power.switchingShare(), 0.25);
    EXPECT_LT(power.leakageShare(), 0.10);
}

TEST(CachePower, HalfWidthFetchHalvesSwitching)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    RunResult arm = syntheticRun(2'000'000, 32, 0);
    RunResult fits = syntheticRun(2'000'000, 16, 0);
    CachePowerBreakdown pa = model.evaluate(arm);
    CachePowerBreakdown pf = model.evaluate(fits);
    EXPECT_NEAR(pf.switchingJ / pa.switchingJ, 0.5, 0.01);
    EXPECT_NEAR(pf.internalJ / pa.internalJ, 1.0, 0.01);
}

TEST(CachePower, MissesAddInternalAndSwitchingEnergy)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    CachePowerBreakdown clean =
        model.evaluate(syntheticRun(1'000'000, 32, 0));
    CachePowerBreakdown missy =
        model.evaluate(syntheticRun(1'000'000, 32, 20'000));
    EXPECT_GT(missy.internalJ, clean.internalJ);
    EXPECT_GT(missy.switchingJ, clean.switchingJ);
}

TEST(CachePower, LeakageProportionalToRuntime)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    CachePowerBreakdown fast =
        model.evaluate(syntheticRun(1'000'000, 32, 0));
    CachePowerBreakdown slow =
        model.evaluate(syntheticRun(1'000'000, 32, 0, 1'000'000));
    EXPECT_NEAR(slow.leakageJ / fast.leakageJ, 2.0, 0.01);
    EXPECT_DOUBLE_EQ(slow.internalJ, fast.internalJ);
}

TEST(CachePower, PeakStructureIsMultiplicative)
{
    // The paper's Figure 10: FITS8's peak saving composes the width
    // factor (FITS16) with the size factor (ARM8).
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double arm16 = big.peakPower(2.0, 0.5);
    double arm8 = small.peakPower(2.0, 0.5);
    double fits16 = big.peakPower(1.0, 0.5);
    double fits8 = small.peakPower(1.0, 0.5);

    double size_saving = 1 - arm8 / arm16;
    double width_saving = 1 - fits16 / arm16;
    double both = 1 - fits8 / arm16;
    EXPECT_GT(size_saving, 0.15);
    EXPECT_GT(width_saving, 0.30);
    EXPECT_NEAR(both, 1 - (1 - size_saving) * (1 - width_saving),
                0.03);
}

TEST(CachePower, EnergyComponentSelector)
{
    CachePowerBreakdown p;
    p.switchingJ = 1;
    p.internalJ = 2;
    p.leakageJ = 4;
    using C = CachePowerBreakdown::Component;
    EXPECT_DOUBLE_EQ(p.energy(C::SWITCHING), 1);
    EXPECT_DOUBLE_EQ(p.energy(C::INTERNAL), 2);
    EXPECT_DOUBLE_EQ(p.energy(C::LEAKAGE), 4);
    EXPECT_DOUBLE_EQ(p.energy(C::TOTAL), 7);
    EXPECT_DOUBLE_EQ(p.switchingShare() + p.internalShare() +
                         p.leakageShare(),
                     1.0);
}

TEST(ChipPower, IcacheShareNearCalibration)
{
    // At the ARM16 operating point the I-cache must contribute ~27% of
    // chip energy (Montanaro breakdown).
    TechParams tech;
    CachePowerModel cache_model(cacheOf(16 * 1024), tech);
    ChipPowerModel chip_model;
    RunResult rr = syntheticRun(2'000'000, 32, 100);
    rr.cycles = static_cast<uint64_t>(2'000'000 / 1.3);
    CachePowerBreakdown icache = cache_model.evaluate(rr);
    ChipPowerBreakdown chip = chip_model.evaluate(rr, icache);
    EXPECT_GT(chip.icacheShare(), 0.20);
    EXPECT_LT(chip.icacheShare(), 0.37);
    EXPECT_GT(chip.totalW(), 0.15);
    EXPECT_LT(chip.totalW(), 0.60);
}

TEST(ChipPower, ComponentsScaleWithTheirDrivers)
{
    ChipPowerModel model;
    CachePowerBreakdown icache;
    RunResult a = syntheticRun(1'000'000, 32, 0);
    RunResult b = syntheticRun(2'000'000, 32, 0);
    ChipPowerBreakdown ca = model.evaluate(a, icache);
    ChipPowerBreakdown cb = model.evaluate(b, icache);
    EXPECT_NEAR(cb.iboxJ / ca.iboxJ, 2.0, 0.01);
    EXPECT_NEAR(cb.clockJ / ca.clockJ, 2.0, 0.01);
    EXPECT_NEAR(cb.dcacheJ / ca.dcacheJ, 2.0, 0.01);
}

} // namespace
} // namespace pfits
