/** @file Unit and property tests for the cache and chip power models. */

#include <gtest/gtest.h>

#include <cmath>

#include "power/cache_power.hh"
#include "power/chip_power.hh"
#include "power/leakage.hh"

namespace pfits
{
namespace
{

CacheConfig
cacheOf(uint32_t bytes)
{
    CacheConfig cfg;
    cfg.name = "icache";
    cfg.sizeBytes = bytes;
    cfg.assoc = 32;
    cfg.lineBytes = 32;
    return cfg;
}

RunResult
syntheticRun(uint64_t instrs, unsigned fetch_bits, uint64_t misses,
             uint64_t extra_cycles = 0)
{
    RunResult rr;
    rr.instructions = instrs;
    rr.cycles = instrs + extra_cycles;
    rr.clockHz = 200e6;
    rr.icache.reads = instrs;
    rr.icache.readMisses = misses;
    rr.fetchBitsTotal = instrs * fetch_bits;
    rr.fetchToggleBits = rr.fetchBitsTotal / 3;
    rr.icacheRefillWords = misses * 8;
    rr.dmemAccesses = instrs / 4;
    return rr;
}

TEST(CachePower, GeometryDerivedQuantities)
{
    CachePowerModel model(cacheOf(16 * 1024), TechParams{});
    EXPECT_EQ(model.rows(), 16u);
    EXPECT_EQ(model.cols(), 32u * 32 * 8);
    EXPECT_EQ(model.cellBits(), 16u * 1024 * 8);
    EXPECT_EQ(model.tagBits(), 32u - 5 - 4);
}

TEST(CachePower, InternalEnergyScalesWithSize)
{
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double ratio = small.internalEnergyPerAccess() /
                   big.internalEnergyPerAccess();
    // Bitlines halve; wordline/sense periphery does not: the ratio must
    // land in the regime that reproduces the paper's ~43% internal
    // saving for a half-sized cache.
    EXPECT_GT(ratio, 0.50);
    EXPECT_LT(ratio, 0.65);
}

TEST(CachePower, ParityColumnCostsEnergy)
{
    TechParams tech;
    CacheConfig plain = cacheOf(16 * 1024);
    CacheConfig protectedCfg = plain;
    protectedCfg.parity = true;
    CachePowerModel unguarded(plain, tech);
    CachePowerModel guarded(protectedCfg, tech);

    // One parity bit per line: 512 extra cells, one extra sense column
    // per way — strictly more energy everywhere, but only slightly
    // (the array is 128 Kibit, parity adds 512 bits).
    EXPECT_EQ(guarded.parityBits(), plain.numLines());
    EXPECT_EQ(unguarded.parityBits(), 0u);
    EXPECT_GT(guarded.internalEnergyPerAccess(),
              unguarded.internalEnergyPerAccess());
    EXPECT_LT(guarded.internalEnergyPerAccess(),
              unguarded.internalEnergyPerAccess() * 1.05);

    RunResult rr = syntheticRun(1000000, 32, 500);
    double with = guarded.evaluate(rr).totalJ();
    double without = unguarded.evaluate(rr).totalJ();
    EXPECT_GT(with, without);
    EXPECT_LT(with, without * 1.05);
}

TEST(CachePower, LeakageScalesWeakly)
{
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double ratio = small.leakagePower() / big.leakagePower();
    // Column periphery is size-independent: the paper's ~15% leakage
    // saving for the half-sized cache pins this ratio near 0.85.
    EXPECT_GT(ratio, 0.80);
    EXPECT_LT(ratio, 0.90);
}

TEST(CachePower, CalibrationPointMatchesStrongArm)
{
    // ARM16 at the calibration point: ~1.0 access/cycle at 200 MHz must
    // land near the StrongARM's measured I-cache power (~27% of 330mW)
    // with the paper's Figure 6 breakdown: internal > 50%, switching
    // ~30-45%, leakage < 10%.
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    RunResult rr = syntheticRun(2'000'000, 32, 100);
    CachePowerBreakdown power = model.evaluate(rr);
    EXPECT_GT(power.totalW(), 0.050);
    EXPECT_LT(power.totalW(), 0.130);
    EXPECT_GT(power.internalShare(), 0.50);
    EXPECT_GT(power.switchingShare(), 0.25);
    EXPECT_LT(power.leakageShare(), 0.10);
}

TEST(CachePower, HalfWidthFetchHalvesSwitching)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    RunResult arm = syntheticRun(2'000'000, 32, 0);
    RunResult fits = syntheticRun(2'000'000, 16, 0);
    CachePowerBreakdown pa = model.evaluate(arm);
    CachePowerBreakdown pf = model.evaluate(fits);
    EXPECT_NEAR(pf.switchingJ / pa.switchingJ, 0.5, 0.01);
    EXPECT_NEAR(pf.internalJ / pa.internalJ, 1.0, 0.01);
}

TEST(CachePower, MissesAddInternalAndSwitchingEnergy)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    CachePowerBreakdown clean =
        model.evaluate(syntheticRun(1'000'000, 32, 0));
    CachePowerBreakdown missy =
        model.evaluate(syntheticRun(1'000'000, 32, 20'000));
    EXPECT_GT(missy.internalJ, clean.internalJ);
    EXPECT_GT(missy.switchingJ, clean.switchingJ);
}

TEST(CachePower, LeakageProportionalToRuntime)
{
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    CachePowerBreakdown fast =
        model.evaluate(syntheticRun(1'000'000, 32, 0));
    CachePowerBreakdown slow =
        model.evaluate(syntheticRun(1'000'000, 32, 0, 1'000'000));
    EXPECT_NEAR(slow.leakageJ / fast.leakageJ, 2.0, 0.01);
    EXPECT_DOUBLE_EQ(slow.internalJ, fast.internalJ);
}

TEST(CachePower, PeakStructureIsMultiplicative)
{
    // The paper's Figure 10: FITS8's peak saving composes the width
    // factor (FITS16) with the size factor (ARM8).
    TechParams tech;
    CachePowerModel big(cacheOf(16 * 1024), tech);
    CachePowerModel small(cacheOf(8 * 1024), tech);
    double arm16 = big.peakPower(2.0, 0.5);
    double arm8 = small.peakPower(2.0, 0.5);
    double fits16 = big.peakPower(1.0, 0.5);
    double fits8 = small.peakPower(1.0, 0.5);

    double size_saving = 1 - arm8 / arm16;
    double width_saving = 1 - fits16 / arm16;
    double both = 1 - fits8 / arm16;
    EXPECT_GT(size_saving, 0.15);
    EXPECT_GT(width_saving, 0.30);
    EXPECT_NEAR(both, 1 - (1 - size_saving) * (1 - width_saving),
                0.03);
}

TEST(CachePower, EnergyComponentSelector)
{
    CachePowerBreakdown p;
    p.switchingJ = 1;
    p.internalJ = 2;
    p.leakageJ = 4;
    using C = CachePowerBreakdown::Component;
    EXPECT_DOUBLE_EQ(p.energy(C::SWITCHING), 1);
    EXPECT_DOUBLE_EQ(p.energy(C::INTERNAL), 2);
    EXPECT_DOUBLE_EQ(p.energy(C::LEAKAGE), 4);
    EXPECT_DOUBLE_EQ(p.energy(C::TOTAL), 7);
    EXPECT_DOUBLE_EQ(p.switchingShare() + p.internalShare() +
                         p.leakageShare(),
                     1.0);
}

TEST(CachePower, SharesGuardZeroEnergy)
{
    // A zero-energy breakdown (skipped sweep point, 0-instruction run)
    // must report zero shares, not 0/0 NaNs.
    CachePowerBreakdown zero;
    EXPECT_EQ(zero.switchingShare(), 0.0);
    EXPECT_EQ(zero.internalShare(), 0.0);
    EXPECT_EQ(zero.leakageShare(), 0.0);

    // End-to-end: evaluating an empty run yields finite numbers
    // everywhere a table might print them.
    TechParams tech;
    CachePowerModel model(cacheOf(16 * 1024), tech);
    CachePowerBreakdown p = model.evaluate(RunResult{});
    EXPECT_TRUE(std::isfinite(p.switchingShare()));
    EXPECT_TRUE(std::isfinite(p.internalShare()));
    EXPECT_TRUE(std::isfinite(p.leakageShare()));
    EXPECT_TRUE(std::isfinite(p.totalW()));
    EXPECT_TRUE(std::isfinite(p.peakW));
    EXPECT_EQ(p.switchingShare(), 0.0);
}

TEST(CachePower, MemoAccessCostsLessAndEvaluateHonorsKnob)
{
    TechParams tech;
    CachePowerModel base(cacheOf(16 * 1024), tech);
    tech.wayMemo = true;
    CachePowerModel memo(cacheOf(16 * 1024), tech);

    // A memoized read touches one of 32 ways and skips the tag search:
    // far below the full array read, but nonzero (the decode fires).
    EXPECT_GT(memo.memoInternalEnergyPerAccess(), 0.0);
    EXPECT_LT(memo.memoInternalEnergyPerAccess(),
              base.internalEnergyPerAccess() * 0.2);

    RunResult rr = syntheticRun(1'000'000, 32, 100);
    rr.icache.wayMemoHits = 800'000;
    double off = base.evaluate(rr).internalJ;
    double on = memo.evaluate(rr).internalJ;
    EXPECT_LT(on, off);
    // Exact decomposition: each memo hit trades a full read for a
    // memoized one.
    EXPECT_NEAR(off - on,
                800'000.0 * (base.internalEnergyPerAccess() -
                             base.memoInternalEnergyPerAccess()),
                off * 1e-12);

    // With no memo hits the knob is a numeric no-op.
    rr.icache.wayMemoHits = 0;
    EXPECT_DOUBLE_EQ(memo.evaluate(rr).internalJ, off);
}

TEST(CachePower, LeakageSimTransitionsAndWakeAccounting)
{
    LeakageParams lp;
    lp.policy = LeakagePolicy::Drowsy;
    lp.decayCycles = 100;
    LeakageSim sim(4, lp);
    using Mode = LeakageSim::LineMode;

    sim.access(0, 10);
    EXPECT_EQ(sim.mode(0, 50), Mode::Awake);
    EXPECT_EQ(sim.mode(0, 111), Mode::Asleep); // idle > decayCycles

    // The wake at cycle 500 folds [10, 500): 100 awake line-cycles,
    // then 390 asleep, one wake, one drowsy penalty cycle.
    sim.access(0, 500);
    LeakageActivity act = sim.finish(600);
    EXPECT_EQ(act.wakes, 1u);
    EXPECT_EQ(act.wakePenaltyCycles,
              static_cast<uint64_t>(lp.drowsyWakeCycles));
    // Frame 0: 10 + 100 + 100 awake, 390 asleep. Frames 1-3 decay
    // untouched from cycle 0: 100 awake + 500 asleep each.
    EXPECT_EQ(act.awakeLineCycles, 210u + 3u * 100u);
    EXPECT_EQ(act.asleepLineCycles, 390u + 3u * 500u);
    EXPECT_EQ(act.endCycle, 600u);

    // Gated charges its deeper wake penalty for the same pattern.
    LeakageParams gp = lp;
    gp.policy = LeakagePolicy::Gated;
    LeakageSim gated(4, gp);
    gated.access(0, 10);
    gated.access(0, 500);
    LeakageActivity gact = gated.finish(600);
    EXPECT_EQ(gact.wakes, 1u);
    EXPECT_EQ(gact.wakePenaltyCycles,
              static_cast<uint64_t>(gp.gatedWakeCycles));
    EXPECT_EQ(gact.awakeLineCycles, act.awakeLineCycles);
    EXPECT_EQ(gact.asleepLineCycles, act.asleepLineCycles);
}

TEST(CachePower, LeakageOffMatchesAlwaysOnModel)
{
    // Policy off: no frame ever sleeps, and pricing the activity
    // reproduces the paper's always-on leakagePower() * seconds (up to
    // floating-point association; evaluate() keeps using the original
    // expression, so golden tables are byte-identical regardless).
    TechParams tech;
    CacheConfig cfg = cacheOf(16 * 1024);
    CachePowerModel model(cfg, tech);

    LeakageSim sim(cfg.numLines(), tech.leakage);
    sim.access(3, 1'000);
    sim.access(3, 90'000);
    sim.access(5, 123'456);
    const uint64_t end = 200'000;
    LeakageActivity act = sim.finish(end);
    EXPECT_EQ(act.asleepLineCycles, 0u);
    EXPECT_EQ(act.wakes, 0u);
    EXPECT_EQ(act.awakeLineCycles,
              static_cast<uint64_t>(cfg.numLines()) * end);

    double seconds = static_cast<double>(end) / tech.clockHz;
    double always_on = model.leakagePower() * seconds;
    EXPECT_NEAR(model.leakageEnergyJ(act), always_on,
                always_on * 1e-9);
}

TEST(CachePower, LeakagePoliciesSaveOnlyTheCellTerm)
{
    // An idle-heavy activity pattern: policies cut the cell-array term
    // (gated below drowsy below off) but the shared column periphery
    // leaks for the whole period under all of them, bounding savings.
    TechParams tech;
    CacheConfig cfg = cacheOf(16 * 1024);
    const uint64_t end = 1'000'000;
    const uint64_t lines = cfg.numLines();

    LeakageActivity idle;
    idle.endCycle = end;
    idle.awakeLineCycles = lines * (end / 10);
    idle.asleepLineCycles = lines * end - idle.awakeLineCycles;
    idle.wakes = 100;
    LeakageActivity off_act = idle;
    // Policy off never sleeps or wakes.
    off_act.awakeLineCycles = lines * end;
    off_act.asleepLineCycles = 0;
    off_act.wakes = 0;
    off_act.wakePenaltyCycles = 0;

    CachePowerModel off_model(cfg, tech);
    TechParams drowsy_tech = tech;
    drowsy_tech.leakage.policy = LeakagePolicy::Drowsy;
    CachePowerModel drowsy(cfg, drowsy_tech);
    TechParams gated_tech = tech;
    gated_tech.leakage.policy = LeakagePolicy::Gated;
    CachePowerModel gated(cfg, gated_tech);

    LeakageActivity drowsy_act = idle;
    drowsy_act.wakePenaltyCycles =
        idle.wakes * drowsy_tech.leakage.drowsyWakeCycles;
    LeakageActivity gated_act = idle;
    gated_act.wakePenaltyCycles =
        idle.wakes * gated_tech.leakage.gatedWakeCycles;

    double j_off = off_model.leakageEnergyJ(off_act);
    double j_drowsy = drowsy.leakageEnergyJ(drowsy_act);
    double j_gated = gated.leakageEnergyJ(gated_act);
    EXPECT_LT(j_gated, j_drowsy);
    EXPECT_LT(j_drowsy, j_off);
    // The periphery floor: no policy can beat it.
    double floor = off_model.peripheryLeakagePower() *
                   (static_cast<double>(end) / tech.clockHz);
    EXPECT_GT(j_gated, floor);
}

TEST(CachePower, OperatingPointScalesDynamicAndLeakage)
{
    TechParams tech;
    OperatingPoint low{"0.9V/80MHz", 0.9, 80e6};
    TechParams scaled = tech.atOperatingPoint(low);
    const double dyn = (0.9 * 0.9) / (1.5 * 1.5);
    EXPECT_DOUBLE_EQ(scaled.eBitlinePerCell,
                     tech.eBitlinePerCell * dyn);
    EXPECT_DOUBLE_EQ(scaled.eOutPerToggledBit,
                     tech.eOutPerToggledBit * dyn);
    EXPECT_DOUBLE_EQ(scaled.eTagPerLineBit, tech.eTagPerLineBit * dyn);
    EXPECT_DOUBLE_EQ(scaled.pLeakPerBit,
                     tech.pLeakPerBit * (0.9 / 1.5));
    EXPECT_DOUBLE_EQ(scaled.pLeakPerCol,
                     tech.pLeakPerCol * (0.9 / 1.5));
    EXPECT_DOUBLE_EQ(scaled.vdd, 0.9);
    EXPECT_DOUBLE_EQ(scaled.clockHz, 80e6);

    // The nominal point is the identity.
    TechParams same =
        tech.atOperatingPoint({"nominal", tech.vdd, tech.clockHz});
    EXPECT_DOUBLE_EQ(same.eBitlinePerCell, tech.eBitlinePerCell);
    EXPECT_DOUBLE_EQ(same.pLeakPerCol, tech.pLeakPerCol);

    // End-to-end on the calibration workload: the low point trades a
    // 2.5x longer run (more leakage energy) for ~0.36x dynamic energy
    // and still wins on total.
    CachePowerModel nominal(cacheOf(16 * 1024), tech);
    CachePowerModel lowered(cacheOf(16 * 1024), scaled);
    RunResult rr = syntheticRun(1'000'000, 32, 100);
    RunResult slow = rr;
    slow.clockHz = low.clockHz;
    CachePowerBreakdown pn = nominal.evaluate(rr);
    CachePowerBreakdown pl = lowered.evaluate(slow);
    EXPECT_LT(pl.totalJ(), pn.totalJ());
    EXPECT_GT(pl.leakageJ, pn.leakageJ);
    EXPECT_NEAR(pl.switchingJ, pn.switchingJ * dyn,
                pn.switchingJ * 1e-9);
}

TEST(ChipPower, IcacheShareNearCalibration)
{
    // At the ARM16 operating point the I-cache must contribute ~27% of
    // chip energy (Montanaro breakdown).
    TechParams tech;
    CachePowerModel cache_model(cacheOf(16 * 1024), tech);
    ChipPowerModel chip_model;
    RunResult rr = syntheticRun(2'000'000, 32, 100);
    rr.cycles = static_cast<uint64_t>(2'000'000 / 1.3);
    CachePowerBreakdown icache = cache_model.evaluate(rr);
    ChipPowerBreakdown chip = chip_model.evaluate(rr, icache);
    EXPECT_GT(chip.icacheShare(), 0.20);
    EXPECT_LT(chip.icacheShare(), 0.37);
    EXPECT_GT(chip.totalW(), 0.15);
    EXPECT_LT(chip.totalW(), 0.60);
}

TEST(ChipPower, DcacheMissBytesFollowConfiguredLineSize)
{
    // Regression: the external-bus miss traffic used to hard-code
    // 32-byte D-cache lines regardless of the simulated geometry.
    ChipEnergyParams params;
    params.eBusPerMissByte = 1e-12;
    ChipPowerModel model(params);
    CachePowerBreakdown icache;
    RunResult rr = syntheticRun(1'000'000, 32, 0);
    rr.dcache.reads = 250'000;
    rr.dcache.readMisses = 10'000;

    ChipPowerBreakdown at_default = model.evaluate(rr, icache);
    ChipPowerBreakdown at32 = model.evaluate(rr, icache, 32);
    ChipPowerBreakdown at64 = model.evaluate(rr, icache, 64);
    // The default argument is the SA-1100's 32 B line.
    EXPECT_DOUBLE_EQ(at_default.otherJ, at32.otherJ);
    // Doubling the line doubles the D-miss bytes — and only those.
    EXPECT_NEAR(at64.otherJ - at32.otherJ,
                10'000.0 * 32.0 * params.eBusPerMissByte,
                at32.otherJ * 1e-12);
    EXPECT_DOUBLE_EQ(at64.dcacheJ, at32.dcacheJ);
    EXPECT_DOUBLE_EQ(at64.iboxJ, at32.iboxJ);
}

TEST(ChipPower, ComponentsScaleWithTheirDrivers)
{
    ChipPowerModel model;
    CachePowerBreakdown icache;
    RunResult a = syntheticRun(1'000'000, 32, 0);
    RunResult b = syntheticRun(2'000'000, 32, 0);
    ChipPowerBreakdown ca = model.evaluate(a, icache);
    ChipPowerBreakdown cb = model.evaluate(b, icache);
    EXPECT_NEAR(cb.iboxJ / ca.iboxJ, 2.0, 0.01);
    EXPECT_NEAR(cb.clockJ / ca.clockJ, 2.0, 0.01);
    EXPECT_NEAR(cb.dcacheJ / ca.dcacheJ, 2.0, 0.01);
}

} // namespace
} // namespace pfits
