/** @file Tests for the differential verification subsystem
 *  (src/verify/): golden-model equivalence, fixed-seed differential
 *  shards across all four backends, and the timing-invariant checker
 *  over the paper's configurations. The full-size sweep (500 random
 *  programs) lives in scripts/check.sh via pfits_verify; these shards
 *  keep ctest fast while pinning the same machinery. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "assembler/builder.hh"
#include "exp/experiment.hh"
#include "exp/figures.hh"
#include "exp/simcache.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"
#include "sim/probe.hh"
#include "verify/differential.hh"
#include "verify/golden.hh"
#include "verify/randprog.hh"
#include "verify/timing.hh"

namespace pfits
{
namespace
{

// --- golden interpreter vs the timing Machine ---------------------------

TEST(GoldenModel, MatchesMachineOnKernel)
{
    mibench::Workload wl = mibench::buildBitcount();

    ArmFrontEnd arm(wl.program);
    GoldenInterpreter golden(arm);
    GoldenResult g = golden.run();

    ASSERT_EQ(g.outcome, RunOutcome::Completed) << g.trapReason;
    ASSERT_FALSE(g.io.emitted.empty());
    // Anchored to the independent C++ reference checksum, not to the
    // Machine: agreement here ties all later comparisons to a third
    // implementation.
    EXPECT_EQ(g.io.emitted.back(), wl.expected);

    RunResult ra = Machine(arm, CoreConfig{}).run();
    ASSERT_EQ(ra.outcome, RunOutcome::Completed);
    EXPECT_EQ(g.retired, ra.instructions);
    EXPECT_EQ(g.io.emitted, ra.io.emitted);
    EXPECT_EQ(g.io.console, ra.io.console);
    for (unsigned r = 0; r < NUM_REGS; ++r)
        EXPECT_EQ(g.finalState.regs[r], ra.finalState.regs[r])
            << "r" << r;
    EXPECT_EQ(g.finalState.flags.n, ra.finalState.flags.n);
    EXPECT_EQ(g.finalState.flags.z, ra.finalState.flags.z);
    EXPECT_EQ(g.finalState.flags.c, ra.finalState.flags.c);
    EXPECT_EQ(g.finalState.flags.v, ra.finalState.flags.v);
}

TEST(GoldenModel, CountsAnnulledInstructions)
{
    ProgramBuilder b("annul");
    b.movi(R0, 1);
    b.cmp(R0, R0);               // Z=1
    b.addi(R1, R0, 5, Cond::NE); // annulled
    b.addi(R1, R0, 7, Cond::EQ); // executes
    b.exit();
    Program prog = b.finish();

    ArmFrontEnd arm(prog);
    GoldenResult g = GoldenInterpreter(arm).run();
    ASSERT_EQ(g.outcome, RunOutcome::Completed);
    EXPECT_EQ(g.annulled, 1u);
    EXPECT_EQ(g.finalState.regs[R1], 8u);

    RunResult ra = Machine(arm, CoreConfig{}).run();
    EXPECT_EQ(g.retired, ra.instructions);
}

TEST(GoldenModel, WatchdogReportsExpiry)
{
    ProgramBuilder b("spin");
    Label loop = b.here();
    b.b(loop);
    Program prog = b.finish();

    ArmFrontEnd arm(prog);
    GoldenResult g =
        GoldenInterpreter(arm).run(/*max_instructions=*/100);
    EXPECT_EQ(g.outcome, RunOutcome::WatchdogExpired);
}

// --- differential shards (fixed seeds, all four backends) ---------------

class DifferentialShard : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialShard, RandomProgramAgreesOnAllBackends)
{
    uint64_t seed = GetParam();
    Program prog = randomVerifyProgram(seed);
    DiffReport rep = diffProgram(prog, seed);
    EXPECT_TRUE(rep.ok()) << rep.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialShard,
                         ::testing::Range<uint64_t>(1, 33));

class DifferentialKernel
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DifferentialKernel, KernelAgreesOnAllBackends)
{
    const mibench::BenchInfo &info = mibench::findBench(GetParam());
    mibench::Workload wl = info.build();
    DiffReport rep = diffProgram(wl.program, 0, &wl.expected);
    EXPECT_TRUE(rep.ok()) << rep.describe();
}

// A cross-section of the suite; pfits_verify covers all 21.
INSTANTIATE_TEST_SUITE_P(Kernels, DifferentialKernel,
                         ::testing::Values("bitcount", "sha",
                                           "stringsearch",
                                           "adpcm.encode"));

class FastBackendShard : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FastBackendShard, RandomProgramAgreesOnFastLoopAlone)
{
    // The Both shards above already cross-check fast against interp;
    // these pin the fast loop in isolation so a divergence bisects in
    // one run. A disjoint seed range from the Both shards widens the
    // sampled program space.
    uint64_t seed = GetParam();
    Program prog = randomVerifyProgram(seed);
    DiffReport rep = diffProgram(prog, seed, nullptr,
                                 DiffBackend::Fast);
    EXPECT_TRUE(rep.ok()) << rep.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastBackendShard,
                         ::testing::Range<uint64_t>(101, 117));

TEST(DifferentialSuite, SmallSweepIsClean)
{
    DiffOptions opts;
    opts.seed = 1000;
    opts.count = 8;
    opts.kernels = false;
    DiffSummary sum = runDifferentialSuite(opts);
    EXPECT_EQ(sum.programsRun, 8u);
    EXPECT_TRUE(sum.ok());
}

// --- engine determinism across backends and job counts -------------------

/** Two figure tables over the whole suite, as one CSV fingerprint. */
std::string
suiteCsv(SimBackend backend, unsigned jobs)
{
    SimCache::instance().clear(); // force fresh simulations
    ExperimentParams params;
    params.core.backend = backend;
    params.jobs = jobs;
    Runner runner(params);
    std::ostringstream os;
    fig13MissRate(runner).printCsv(os);
    fig14Ipc(runner).printCsv(os);
    return os.str();
}

TEST(BackendDeterminism, TablesByteIdenticalAcrossBackendsAndJobs)
{
    // The merge gate for the fast backend: experiment tables must be
    // byte-identical to the interpreter's, at any worker count (1,
    // 4, and the hardware-sized shared pool). A single divergent
    // counter anywhere in the suite shows up here.
    const std::string interp = suiteCsv(SimBackend::Interp, 4);
    ASSERT_FALSE(interp.empty());
    EXPECT_EQ(interp, suiteCsv(SimBackend::Fast, 1));
    EXPECT_EQ(interp, suiteCsv(SimBackend::Fast, 4));
    EXPECT_EQ(interp, suiteCsv(SimBackend::Fast, 0));
    SimCache::instance().clear();
}

// --- timing invariants ---------------------------------------------------

TEST(TimingInvariants, RandomProgramScheduleIsLegal)
{
    Program prog = randomVerifyProgram(7);
    ArmFrontEnd arm(prog);
    CoreConfig core;
    Machine machine(arm, core);

    TimingInvariantChecker checker(core);
    ObserverList observers;
    observers.add(&checker);
    RunResult rr = machine.run(nullptr, &observers);

    ASSERT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_TRUE(checker.ok()) << checker.summary();
    // IPC can never exceed the issue width.
    EXPECT_LE(rr.instructions, rr.cycles * core.issueWidth);
}

TEST(TimingInvariants, HoldOnPaperConfigsForKernel)
{
    // Directly attach the checker on both paper I-cache sizes of the
    // ARM frontend; the four-config FITS sweep is the test below.
    mibench::Workload wl = mibench::buildStringsearch();
    ArmFrontEnd arm(wl.program);
    for (uint32_t icache_bytes : {16u * 1024u, 8u * 1024u}) {
        CoreConfig core;
        core.icache.sizeBytes = icache_bytes;
        Machine machine(arm, core);
        TimingInvariantChecker checker(core);
        ObserverList observers;
        observers.add(&checker);
        RunResult rr = machine.run(nullptr, &observers);
        ASSERT_EQ(rr.outcome, RunOutcome::Completed);
        EXPECT_TRUE(checker.ok())
            << "icache " << icache_bytes << ": " << checker.summary();
    }
}

TEST(TimingInvariants, FullSweepAcrossBenchmarksAndConfigs)
{
    // The acceptance sweep: every MiBench benchmark on the paper's
    // four configurations (ARM16/ARM8/FITS16/FITS8), every schedule
    // verified against the scoreboard contract.
    std::vector<std::string> fails = runTimingInvariantSweep();
    EXPECT_TRUE(fails.empty())
        << fails.size() << " failing runs; first: " << fails.front();
}

} // namespace
} // namespace pfits
