/** @file Functional validation of all 21 MiBench-style workloads:
 *  the ARM binary must reproduce the golden C++ checksum, and the
 *  translated FITS binary must reproduce the ARM behaviour — the
 *  semantic-preservation property at suite scale. */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "fits/fits_frontend.hh"
#include "fits/profile.hh"
#include "fits/synth.hh"
#include "fits/translate.hh"
#include "mibench/mibench.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

class MibenchTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MibenchTest, ArmMatchesGolden)
{
    const mibench::BenchInfo &info = mibench::findBench(GetParam());
    mibench::Workload w = info.build();
    ArmFrontEnd fe(w.program);
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    ASSERT_FALSE(rr.io.emitted.empty());
    EXPECT_EQ(rr.io.emitted[0], w.expected);
    // The checksum is also stored at the "result" symbol.
    EXPECT_EQ(m.mem().read32(w.program.symbol("result")), w.expected);
}

TEST_P(MibenchTest, FitsPreservesSemantics)
{
    const mibench::BenchInfo &info = mibench::findBench(GetParam());
    mibench::Workload w = info.build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
    FitsProgram fits = translateProgram(w.program, isa, profile);
    FitsFrontEnd fe(std::move(fits));
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    ASSERT_FALSE(rr.io.emitted.empty());
    EXPECT_EQ(rr.io.emitted[0], w.expected);
}

TEST_P(MibenchTest, FitsShrinksCode)
{
    const mibench::BenchInfo &info = mibench::findBench(GetParam());
    mibench::Workload w = info.build();
    ProfileInfo profile = profileProgram(w.program);
    FitsIsa isa = synthesize(profile, SynthParams{}, info.name);
    FitsProgram fits = translateProgram(w.program, isa, profile);
    double ratio = static_cast<double>(fits.codeBytes()) /
                   w.program.codeBytes();
    EXPECT_LT(ratio, 0.75) << info.name;
    EXPECT_GT(ratio, 0.40) << info.name;
    EXPECT_GT(fits.mapping.staticRate(), 0.60) << info.name;
    EXPECT_GT(fits.mapping.dynRate(), 0.70) << info.name;
}

namespace
{
std::vector<const char *>
benchNames()
{
    std::vector<const char *> names;
    for (const auto &info : mibench::suite())
        names.push_back(info.name);
    return names;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, MibenchTest, ::testing::ValuesIn(benchNames()),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

TEST(MibenchSuite, HasExactly21PaperBenchmarks)
{
    const auto &suite = mibench::suite();
    EXPECT_EQ(suite.size(), 21u);
    // The paper drops basicmath and gsm.encode, renames gsm.decode.
    for (const auto &info : suite) {
        EXPECT_STRNE(info.name, "basicmath");
        EXPECT_STRNE(info.name, "gsm.encode");
        EXPECT_STRNE(info.name, "gsm.decode");
    }
    EXPECT_NO_THROW(mibench::findBench("gsm"));
    EXPECT_THROW(mibench::findBench("nope"), FatalError);
}

TEST(MibenchSuite, CodeFootprintsSpanCachePressureRange)
{
    // The 16 KB vs 8 KB experiment needs benchmarks on both sides of
    // the 8 KB boundary.
    size_t small = 0, large = 0;
    for (const auto &info : mibench::suite()) {
        uint32_t bytes = info.build().program.codeBytes();
        if (bytes < 2048)
            ++small;
        if (bytes > 8192)
            ++large;
    }
    EXPECT_GE(small, 5u);
    EXPECT_GE(large, 2u);
}

TEST(MibenchSuite, KernelsLeaveScratchRegisterFree)
{
    for (const auto &info : mibench::suite()) {
        ProfileInfo profile =
            profileProgram(info.build().program, false);
        EXPECT_FALSE((profile.regsUsed >> R12) & 1u) << info.name;
    }
}

} // namespace
} // namespace pfits
