/** @file Timing-model and end-to-end tests for the Machine. */

#include <gtest/gtest.h>

#include <functional>

#include "assembler/builder.hh"
#include "common/logging.hh"
#include "sim/frontend.hh"
#include "sim/machine.hh"

namespace pfits
{
namespace
{

Program
countdownProgram(uint32_t n)
{
    ProgramBuilder b("countdown");
    b.zeros("result", 4);
    b.movi(R0, n);
    Label loop = b.here();
    b.subi(R0, R0, 1, Cond::AL, true);
    b.b(loop, Cond::NE);
    b.movi(R0, 0xabcd);
    b.lea(R1, "result");
    b.str(R0, R1, 0);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    return b.finish();
}

TEST(Machine, RunsToCompletion)
{
    ArmFrontEnd fe(countdownProgram(100));
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.outcome, RunOutcome::Completed);
    ASSERT_EQ(rr.io.emitted.size(), 1u);
    EXPECT_EQ(rr.io.emitted[0], 0xabcdu);
    EXPECT_EQ(m.mem().read32(kDefaultDataBase), 0xabcdu);
    EXPECT_GT(rr.instructions, 200u);
    EXPECT_GT(rr.cycles, rr.instructions / 2); // IPC <= issue width
}

TEST(Machine, AdcWaitsForFlagsEvenWhenUnconditional)
{
    // ADDS writes NZCV one cycle after issue; an unconditional ADC
    // reads C and must not co-issue with it. The control program is
    // identical except a plain ADD replaces the ADC, and a dependent
    // chain on the result carries the one-cycle stall (if any) to the
    // end of the run, where dual-issue slack cannot re-hide it.
    auto build = [](AluOp second_op) {
        ProgramBuilder b(second_op == AluOp::ADC ? "adc" : "add");
        b.addi(R1, R0, 1, Cond::AL, true);      // ADDS r1, r0, #1
        b.alui(second_op, R2, R0, 0);           // ADC/ADD r2, r0, #0
        for (int i = 0; i < 8; ++i)
            b.addi(R2, R2, 1);                  // serial chain on r2
        b.exit();
        return b.finish();
    };
    ArmFrontEnd adc_fe(build(AluOp::ADC));
    ArmFrontEnd add_fe(build(AluOp::ADD));
    RunResult adc = Machine(adc_fe, CoreConfig{}).run();
    RunResult add = Machine(add_fe, CoreConfig{}).run();
    EXPECT_EQ(adc.cycles, add.cycles + 1)
        << "ADDS;ADC must issue in separate cycles";
}

TEST(Machine, ConditionalOpStillWaitsForFlags)
{
    // The mask-based stall must keep the pre-existing behaviour for
    // conditional ops: ADDEQ reads the flags ADDS just produced.
    auto build = [](Cond cond) {
        ProgramBuilder b("cond");
        b.addi(R1, R0, 1, Cond::AL, true);
        b.addi(R2, R0, 1, cond);
        for (int i = 0; i < 8; ++i)
            b.addi(R2, R2, 1);
        b.exit();
        return b.finish();
    };
    ArmFrontEnd cond_fe(build(Cond::NE)); // r0+1 != 0: executes
    ArmFrontEnd plain_fe(build(Cond::AL));
    RunResult conditional = Machine(cond_fe, CoreConfig{}).run();
    RunResult plain = Machine(plain_fe, CoreConfig{}).run();
    EXPECT_EQ(conditional.cycles, plain.cycles + 1);
}

TEST(Machine, IpcNeverExceedsIssueWidth)
{
    ArmFrontEnd fe(countdownProgram(5000));
    CoreConfig cfg;
    Machine m(fe, cfg);
    RunResult rr = m.run();
    EXPECT_LE(rr.ipc(), static_cast<double>(cfg.issueWidth));
    EXPECT_GT(rr.ipc(), 0.1);
}

namespace
{

/** A warm loop: body repeated enough that compulsory misses vanish. */
RunResult
runLoop(const std::function<void(ProgramBuilder &)> &body,
        uint32_t iterations = 2000)
{
    ProgramBuilder b("loop");
    b.movi(R10, iterations);
    Label head = b.here();
    body(b);
    b.subi(R10, R10, 1, Cond::AL, true);
    b.b(head, Cond::NE);
    b.exit();
    ArmFrontEnd fe(b.finish());
    return Machine(fe, CoreConfig{}).run();
}

} // namespace

TEST(Machine, IndependentOpsDualIssue)
{
    // Independent ALU chains in a warm loop should approach IPC 2.
    RunResult rr = runLoop([](ProgramBuilder &b) {
        for (int i = 0; i < 16; ++i) {
            b.addi(R0, R0, 1);
            b.addi(R1, R1, 1);
            b.addi(R2, R2, 1);
            b.addi(R3, R3, 1);
        }
    });
    EXPECT_GT(rr.ipc(), 1.6);
}

TEST(Machine, DependentChainSingleIssues)
{
    RunResult rr = runLoop([](ProgramBuilder &b) {
        for (int i = 0; i < 64; ++i)
            b.addi(R0, R0, 1); // every op depends on the previous
    });
    EXPECT_LT(rr.ipc(), 1.1);
}

TEST(Machine, TakenBranchesCostBubbles)
{
    // A tight taken-branch loop vs the same work unrolled: the branchy
    // version needs clearly more cycles per instruction.
    RunResult branchy = runLoop([](ProgramBuilder &b) { b.nop(); },
                                20000);
    RunResult unrolled = runLoop(
        [](ProgramBuilder &b) {
            for (int i = 0; i < 64; ++i)
                b.nop();
        },
        500);
    EXPECT_GT(static_cast<double>(branchy.cycles) /
                  branchy.instructions,
              static_cast<double>(unrolled.cycles) /
                  unrolled.instructions * 1.4);
}

TEST(Machine, IcacheMissesAddStallCycles)
{
    Program prog = countdownProgram(2000);
    ArmFrontEnd fe(prog);
    CoreConfig fast;
    CoreConfig slow;
    slow.icacheMissPenalty = 200;
    // Tiny cache to force misses in the loop? The loop fits one line,
    // so instead compare against a direct-mapped 1-line cache.
    slow.icache.sizeBytes = 64;
    slow.icache.assoc = 1;
    slow.icache.lineBytes = 32;
    fast.icache = slow.icache;
    fast.icacheMissPenalty = 0;
    RunResult fast_rr = Machine(fe, fast).run();
    RunResult slow_rr = Machine(fe, slow).run();
    EXPECT_EQ(fast_rr.icache.misses(), slow_rr.icache.misses());
    EXPECT_GT(slow_rr.cycles, fast_rr.cycles);
}

TEST(Machine, LoadUseLatencyVisible)
{
    auto loadLoop = [](bool spaced) {
        ProgramBuilder b("loads");
        b.zeros("buf", 64);
        b.lea(R1, "buf");
        b.movi(R10, 2000);
        Label head = b.here();
        for (int i = 0; i < 8; ++i) {
            b.ldr(R0, R1, 0);
            if (spaced)
                b.add(R3, R3, R4); // independent filler
            b.add(R2, R2, R0);     // uses the load
        }
        b.subi(R10, R10, 1, Cond::AL, true);
        b.b(head, Cond::NE);
        b.exit();
        ArmFrontEnd fe(b.finish());
        return Machine(fe, CoreConfig{}).run();
    };
    RunResult chained = loadLoop(false);
    RunResult spaced = loadLoop(true);
    // The spaced version does ~40% more instructions in barely more
    // cycles because the filler hides the load-use bubble.
    EXPECT_GT(spaced.instructions,
              chained.instructions + 8 * 2000 - 100);
    EXPECT_LT(static_cast<double>(spaced.cycles),
              static_cast<double>(chained.cycles) * 1.15);
}

TEST(Machine, FetchActivityTracked)
{
    ArmFrontEnd fe(countdownProgram(100));
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.fetchBitsTotal, rr.instructions * 32);
    EXPECT_GT(rr.fetchToggleBits, 0u);
    EXPECT_LT(rr.fetchToggleBits, rr.fetchBitsTotal);
    EXPECT_EQ(rr.icache.accesses(), rr.instructions);
}

TEST(Machine, RunawayProgramReportsWatchdogExpired)
{
    // A deliberately infinite loop: the watchdog must end the run with
    // a structured outcome and partial statistics, not an exception.
    ProgramBuilder b("forever");
    Label spin = b.here();
    b.b(spin);
    ArmFrontEnd fe(b.finish());
    CoreConfig cfg;
    cfg.maxInstructions = 1000;
    Machine m(fe, cfg);
    RunResult rr = m.run();
    EXPECT_EQ(rr.outcome, RunOutcome::WatchdogExpired);
    EXPECT_NE(rr.outcome, RunOutcome::Completed);
    EXPECT_EQ(rr.instructions, 1000u);          // partial stats kept
    EXPECT_GT(rr.cycles, rr.instructions / 2);  // timing too
    EXPECT_GT(rr.icache.accesses(), 0u);
    EXPECT_NE(rr.trapReason.find("instruction cap"),
              std::string::npos);
}

TEST(Machine, FallingOffTheEndTraps)
{
    ProgramBuilder b("noexit");
    b.nop();
    ArmFrontEnd fe(b.finish());
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.outcome, RunOutcome::Trapped);
    EXPECT_NE(rr.outcome, RunOutcome::Completed);
    EXPECT_NE(rr.trapReason.find("fell off the end"),
              std::string::npos);
}

TEST(Machine, MisalignedAccessTrapsWithPartialStats)
{
    // A misaligned load is an architectural trap, recorded on the
    // result instead of thrown at the caller.
    ProgramBuilder b("misalign");
    b.movi(R1, 0x101);
    b.ldr(R0, R1, 0); // word load at a non-word address
    b.exit();
    ArmFrontEnd fe(b.finish());
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.outcome, RunOutcome::Trapped);
    EXPECT_NE(rr.trapReason.find("misaligned"), std::string::npos);
    EXPECT_GE(rr.instructions, 1u);
}

TEST(Machine, CompletedRunReportsOutcome)
{
    ArmFrontEnd fe(countdownProgram(10));
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_EQ(rr.outcome, RunOutcome::Completed);
    EXPECT_TRUE(rr.trapReason.empty());
    EXPECT_STREQ(runOutcomeName(rr.outcome), "completed");
}

TEST(Machine, DataSegmentsLoaded)
{
    ProgramBuilder b("data");
    b.words("tab", {0x11111111u, 0x22222222u});
    b.lea(R1, "tab");
    b.ldr(R0, R1, 4);
    b.swi(SWI_EMIT_WORD);
    b.exit();
    Program prog = b.finish();
    uint32_t base = prog.symbol("tab");
    ArmFrontEnd fe(std::move(prog));
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.io.emitted.at(0), 0x22222222u);
    EXPECT_EQ(m.mem().read32(base), 0x11111111u);
}

TEST(Machine, AnnulledInstructionsCounted)
{
    ProgramBuilder b("annul");
    b.movi(R0, 100);
    Label loop = b.here();
    b.subi(R0, R0, 1, Cond::AL, true);
    b.addi(R1, R1, 1, Cond::EQ); // executes exactly once
    b.b(loop, Cond::NE);
    b.exit();
    ArmFrontEnd fe(b.finish());
    Machine m(fe, CoreConfig{});
    RunResult rr = m.run();
    EXPECT_EQ(rr.annulled, 99u + 1u); // 99 addeq annulled + final bne
    EXPECT_EQ(rr.finalState.regs[R1], 1u);
}

} // namespace
} // namespace pfits
