/** @file Unit and property tests for the uARM ISA encode/decode layer. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/logging.hh"
#include "isa/isa.hh"

namespace pfits
{
namespace
{

MicroOp
roundTrip(const MicroOp &uop)
{
    uint32_t word = 0;
    EXPECT_TRUE(encodeArm(uop, word)) << disassemble(uop);
    MicroOp back;
    EXPECT_TRUE(decodeArm(word, back)) << std::hex << word;
    return back;
}

TEST(Isa, CondNamesAndInverse)
{
    EXPECT_STREQ(condName(Cond::EQ), "eq");
    EXPECT_STREQ(condName(Cond::AL), "");
    EXPECT_EQ(invertCond(Cond::EQ), Cond::NE);
    EXPECT_EQ(invertCond(Cond::GT), Cond::LE);
    EXPECT_EQ(invertCond(Cond::CS), Cond::CC);
    EXPECT_EQ(invertCond(invertCond(Cond::HI)), Cond::HI);
    EXPECT_THROW(invertCond(Cond::AL), PanicError);
}

TEST(Isa, CondPassesTruthTable)
{
    Flags f;
    f.z = true;
    EXPECT_TRUE(condPasses(Cond::EQ, f));
    EXPECT_FALSE(condPasses(Cond::NE, f));
    EXPECT_TRUE(condPasses(Cond::LE, f));
    EXPECT_FALSE(condPasses(Cond::GT, f));

    f = Flags{};
    f.n = true;
    f.v = false;
    EXPECT_TRUE(condPasses(Cond::LT, f));
    EXPECT_FALSE(condPasses(Cond::GE, f));
    f.v = true;
    EXPECT_TRUE(condPasses(Cond::GE, f));

    f = Flags{};
    f.c = true;
    EXPECT_TRUE(condPasses(Cond::CS, f));
    EXPECT_TRUE(condPasses(Cond::HI, f));
    f.z = true;
    EXPECT_FALSE(condPasses(Cond::HI, f));
    EXPECT_TRUE(condPasses(Cond::LS, f));
    EXPECT_TRUE(condPasses(Cond::AL, Flags{}));
}

TEST(Isa, DataProcRegRoundTrip)
{
    for (unsigned op = 0; op < static_cast<unsigned>(AluOp::NUM); ++op) {
        MicroOp uop;
        uop.op = static_cast<Op>(op);
        uop.cond = Cond::NE;
        uop.setsFlags = true;
        uop.rd = R3;
        uop.rn = R4;
        uop.rm = R5;
        uop.op2Kind = Operand2Kind::REG;
        MicroOp back = roundTrip(uop);
        EXPECT_EQ(back.op, uop.op);
        EXPECT_EQ(back.cond, Cond::NE);
        EXPECT_TRUE(back.setsFlags);
        EXPECT_EQ(back.rn, R4);
        EXPECT_EQ(back.rm, R5);
        EXPECT_EQ(back.op2Kind, Operand2Kind::REG);
    }
}

TEST(Isa, DataProcShiftedRoundTrip)
{
    for (unsigned t = 0; t < static_cast<unsigned>(ShiftType::NUM);
         ++t) {
        MicroOp uop;
        uop.op = Op::ADD;
        uop.rd = R0;
        uop.rn = R1;
        uop.rm = R2;
        uop.op2Kind = Operand2Kind::REG_SHIFT_IMM;
        uop.shiftType = static_cast<ShiftType>(t);
        uop.shiftAmount = 17;
        MicroOp back = roundTrip(uop);
        EXPECT_EQ(back.shiftType, uop.shiftType);
        EXPECT_EQ(back.shiftAmount, 17);
        EXPECT_EQ(back.op2Kind, Operand2Kind::REG_SHIFT_IMM);
    }
}

TEST(Isa, DataProcShiftRegRoundTrip)
{
    MicroOp uop;
    uop.op = Op::ORR;
    uop.rd = R7;
    uop.rn = R8;
    uop.rm = R9;
    uop.rs = R10;
    uop.op2Kind = Operand2Kind::REG_SHIFT_REG;
    uop.shiftType = ShiftType::ASR;
    MicroOp back = roundTrip(uop);
    EXPECT_EQ(back.rs, R10);
    EXPECT_EQ(back.op2Kind, Operand2Kind::REG_SHIFT_REG);
    EXPECT_EQ(back.shiftType, ShiftType::ASR);
}

TEST(Isa, ImmediateRoundTripAndRejection)
{
    MicroOp uop;
    uop.op = Op::ADD;
    uop.rd = R0;
    uop.rn = R1;
    uop.op2Kind = Operand2Kind::IMM;
    uop.imm = 0xff000000u;
    MicroOp back = roundTrip(uop);
    EXPECT_EQ(back.imm, 0xff000000u);

    uop.imm = 0x12345u; // not a rotated imm8
    uint32_t word;
    EXPECT_FALSE(encodeArm(uop, word));
}

TEST(Isa, MemoryRoundTrip)
{
    for (Op op : {Op::LDR, Op::STR, Op::LDRB, Op::STRB}) {
        MicroOp uop;
        uop.op = op;
        uop.rd = R2;
        uop.rn = SP;
        uop.memKind = MemOffsetKind::IMM;
        uop.memDisp = -44;
        uop.memAdd = false;
        MicroOp back = roundTrip(uop);
        EXPECT_EQ(back.op, op);
        EXPECT_EQ(back.memDisp, -44);
        EXPECT_EQ(back.rn, SP);
    }
}

TEST(Isa, MemoryRegisterOffsetRoundTrip)
{
    MicroOp uop;
    uop.op = Op::LDR;
    uop.rd = R1;
    uop.rn = R2;
    uop.rm = R3;
    uop.memKind = MemOffsetKind::REG_SHIFT_IMM;
    uop.shiftType = ShiftType::LSL;
    uop.shiftAmount = 2;
    uop.memAdd = true;
    MicroOp back = roundTrip(uop);
    EXPECT_EQ(back.memKind, MemOffsetKind::REG_SHIFT_IMM);
    EXPECT_EQ(back.shiftAmount, 2);
    EXPECT_EQ(back.rm, R3);
}

TEST(Isa, MemoryDisplacementRange)
{
    MicroOp uop;
    uop.op = Op::LDR;
    uop.rd = R0;
    uop.rn = R1;
    uop.memKind = MemOffsetKind::IMM;
    uop.memDisp = 4095;
    uint32_t word;
    EXPECT_TRUE(encodeArm(uop, word));
    uop.memDisp = 4096;
    EXPECT_FALSE(encodeArm(uop, word));
    uop.op = Op::LDRH;
    uop.memDisp = 127;
    EXPECT_TRUE(encodeArm(uop, word));
    uop.memDisp = 128;
    EXPECT_FALSE(encodeArm(uop, word));
}

TEST(Isa, HalfwordSignedRoundTrip)
{
    for (Op op : {Op::LDRH, Op::STRH, Op::LDRSB, Op::LDRSH}) {
        MicroOp uop;
        uop.op = op;
        uop.rd = R5;
        uop.rn = R6;
        uop.memKind = MemOffsetKind::IMM;
        uop.memDisp = -12;
        MicroOp back = roundTrip(uop);
        EXPECT_EQ(back.op, op);
        EXPECT_EQ(back.memDisp, -12);
    }
}

TEST(Isa, BlockTransferRoundTrip)
{
    MicroOp uop;
    uop.op = Op::STM;
    uop.rn = SP;
    uop.regList = 0x40f0; // r4-r7, lr
    MicroOp back = roundTrip(uop);
    EXPECT_EQ(back.op, Op::STM);
    EXPECT_EQ(back.regList, 0x40f0);
    EXPECT_EQ(back.rn, SP);

    uop.regList = 0;
    uint32_t word;
    EXPECT_FALSE(encodeArm(uop, word));
}

TEST(Isa, BranchRoundTrip)
{
    for (int32_t offset : {-1, 1, -100000, 100000, 0}) {
        MicroOp uop;
        uop.op = Op::B;
        uop.cond = Cond::LT;
        uop.branchOffset = offset;
        MicroOp back = roundTrip(uop);
        EXPECT_EQ(back.branchOffset, offset);
        EXPECT_EQ(back.cond, Cond::LT);
    }
    MicroOp bl;
    bl.op = Op::BL;
    bl.branchOffset = 42;
    EXPECT_EQ(roundTrip(bl).op, Op::BL);
}

TEST(Isa, ExtendedOpsRoundTrip)
{
    MicroOp mul;
    mul.op = Op::MUL;
    mul.rd = R1;
    mul.rm = R2;
    mul.rs = R3;
    EXPECT_EQ(roundTrip(mul).op, Op::MUL);

    MicroOp mla;
    mla.op = Op::MLA;
    mla.rd = R1;
    mla.rm = R2;
    mla.rs = R3;
    mla.ra = R4;
    MicroOp back = roundTrip(mla);
    EXPECT_EQ(back.ra, R4);

    MicroOp umull;
    umull.op = Op::UMULL;
    umull.rd = R5; // hi
    umull.ra = R6; // lo
    umull.rm = R7;
    umull.rs = R8;
    back = roundTrip(umull);
    EXPECT_EQ(back.rd, R5);
    EXPECT_EQ(back.ra, R6);

    MicroOp movw;
    movw.op = Op::MOVW;
    movw.rd = R9;
    movw.imm = 0xbeef;
    EXPECT_EQ(roundTrip(movw).imm, 0xbeefu);

    MicroOp clz;
    clz.op = Op::CLZ;
    clz.rd = R1;
    clz.rm = R2;
    EXPECT_EQ(roundTrip(clz).op, Op::CLZ);

    for (Op op : {Op::SDIV, Op::UDIV, Op::QADD, Op::QSUB}) {
        MicroOp tri;
        tri.op = op;
        tri.rd = R1;
        tri.rn = R2;
        tri.rm = R3;
        EXPECT_EQ(roundTrip(tri).op, op);
    }
}

TEST(Isa, SystemOpsRoundTrip)
{
    MicroOp swi;
    swi.op = Op::SWI;
    swi.imm = 2;
    EXPECT_EQ(roundTrip(swi).imm, 2u);

    MicroOp ret;
    ret.op = Op::RET;
    ret.cond = Cond::EQ;
    EXPECT_EQ(roundTrip(ret).cond, Cond::EQ);

    MicroOp nop;
    nop.op = Op::NOP;
    EXPECT_EQ(roundTrip(nop).op, Op::NOP);
}

TEST(Isa, DisassemblerSmoke)
{
    MicroOp uop;
    uop.op = Op::ADD;
    uop.rd = R0;
    uop.rn = R1;
    uop.rm = R2;
    uop.op2Kind = Operand2Kind::REG;
    uop.cond = Cond::EQ;
    EXPECT_EQ(disassemble(uop), "addeq r0, r1, r2");

    uop.op2Kind = Operand2Kind::REG_SHIFT_IMM;
    uop.shiftType = ShiftType::LSL;
    uop.shiftAmount = 2;
    EXPECT_EQ(disassemble(uop), "addeq r0, r1, r2, lsl #2");
}

TEST(Isa, ReadsWritesRegisters)
{
    MicroOp uop;
    uop.op = Op::ADD;
    uop.rd = R0;
    uop.rn = R1;
    uop.rm = R2;
    uop.op2Kind = Operand2Kind::REG;
    EXPECT_TRUE(uop.writesReg(R0));
    EXPECT_FALSE(uop.writesReg(R1));
    EXPECT_TRUE(uop.readsReg(R1));
    EXPECT_TRUE(uop.readsReg(R2));
    EXPECT_FALSE(uop.readsReg(R0));

    MicroOp str;
    str.op = Op::STR;
    str.rd = R3;
    str.rn = R4;
    str.memKind = MemOffsetKind::IMM;
    EXPECT_FALSE(str.writesReg(R3));
    EXPECT_TRUE(str.readsReg(R3));
    EXPECT_TRUE(str.readsReg(R4));

    MicroOp pop;
    pop.op = Op::LDM;
    pop.rn = SP;
    pop.regList = (1u << R4) | (1u << LR);
    EXPECT_TRUE(pop.writesReg(R4));
    EXPECT_TRUE(pop.writesReg(LR));
    EXPECT_TRUE(pop.writesReg(SP)); // writeback
    EXPECT_TRUE(pop.readsReg(SP));

    MicroOp bl;
    bl.op = Op::BL;
    EXPECT_TRUE(bl.writesReg(LR));
}

/** Fuzz: every word that decodes must re-encode to the same word. */
TEST(Isa, DecodeEncodeFuzzRoundTrip)
{
    Rng rng(0x15a15a1ull);
    int decoded = 0;
    for (int i = 0; i < 200000; ++i) {
        uint32_t word = rng.next();
        MicroOp uop;
        if (!decodeArm(word, uop))
            continue;
        ++decoded;
        uint32_t back;
        if (!encodeArm(uop, back))
            continue; // some decodable words have no canonical encoding
        MicroOp again;
        ASSERT_TRUE(decodeArm(back, again));
        EXPECT_EQ(disassemble(uop), disassemble(again)) << std::hex
                                                        << word;
    }
    EXPECT_GT(decoded, 1000);
}

TEST(Isa, RegMasksAgreeWithPredicates)
{
    // The scoreboard consumes readRegMask()/writeRegMask(); they must
    // stay bit-for-bit consistent with the per-register predicates
    // across every decodable encoding.
    Rng rng(0x5c07eb0ull);
    int decoded = 0;
    for (int i = 0; i < 200000 && decoded < 5000; ++i) {
        uint32_t word = rng.next();
        MicroOp uop;
        if (!decodeArm(word, uop))
            continue;
        ++decoded;
        uint32_t reads = uop.readRegMask();
        uint32_t writes = uop.writeRegMask();
        for (uint8_t reg = 0; reg < NUM_REGS; ++reg) {
            ASSERT_EQ(((reads >> reg) & 1u) != 0, uop.readsReg(reg))
                << std::hex << word << " reg " << unsigned(reg);
            ASSERT_EQ(((writes >> reg) & 1u) != 0, uop.writesReg(reg))
                << std::hex << word << " reg " << unsigned(reg);
        }
        EXPECT_EQ((reads & kFlagsMask) != 0, uop.readsFlags());
        EXPECT_EQ((writes & kFlagsMask) != 0, uop.setsFlags);
    }
    EXPECT_GE(decoded, 5000);
}

TEST(Isa, ReadsFlagsPredicate)
{
    MicroOp uop;
    uop.op = Op::ADC;
    EXPECT_TRUE(uop.readsFlags()); // carry consumer, even when AL
    uop.op = Op::SBC;
    EXPECT_TRUE(uop.readsFlags());
    uop.op = Op::RSC;
    EXPECT_TRUE(uop.readsFlags());
    uop.op = Op::ADD;
    EXPECT_FALSE(uop.readsFlags());
    uop.cond = Cond::EQ; // any conditional op waits on NZCV
    EXPECT_TRUE(uop.readsFlags());
}

} // namespace
} // namespace pfits
