#!/usr/bin/env bash
# Suite-level regression gate over run manifests: run every bench with
# --json, aggregate the manifests into one BENCH_suite.json via
# pfits_report, and diff it against the checked-in baseline
# (tests/baseline/BENCH_baseline.json).
#
# Numeric table drift beyond the tolerance fails the gate. Wall times
# are machine-specific, so the diff against the checked-in baseline
# runs with --ignore-time; the 15% wall-time policy is exercised by the
# unit tests (Report.DiffFlagsWallTimeRegressionBeyondThreshold) and is
# available for same-machine comparisons via pfits_report diff.
#
# Usage: bench_regress.sh <build-dir> [--update]
#   --update  regenerate tests/baseline/BENCH_baseline.json from the
#             current binaries (review the diff before committing).
set -euo pipefail

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <build-dir> [--update]" >&2
    exit 2
fi

build="$1"
update="${2:-}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo/tests/baseline/BENCH_baseline.json"
report="$build/src/obs/pfits_report"

if [[ ! -x "$report" ]]; then
    echo "bench_regress: missing $report (build first)" >&2
    exit 2
fi

benches=(
    fig03_static_mapping
    fig04_dynamic_mapping
    fig05_code_size
    fig06_power_breakdown
    fig07_switching_power
    fig08_internal_power
    fig09_leakage_power
    fig10_peak_power
    fig11_total_cache_power
    fig12_chip_power
    fig13_miss_rate
    fig14_ipc
    abl_dictionary_sweep
    abl_register_sweep
    abl_cache_geometry
    abl_synthesis_features
    ext_chip_power
    ext_code_compression
    ext_fetch_packing
    ext_issue_width
    ext_dcache_power
    ext_profile_fidelity
    ext_fault_resilience
    ext_phase_behavior
    ext_way_memo
    ext_leakage_policy
    fig11_total_cache_power+dvs
)

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Each bench runs once per backend; the fast run writes a manifest
# under the distinct tool identity "<bench>+fast", so the suite file
# tracks the interp and fast series separately (and a table divergence
# between them trips the same gate as any other drift).
status=0
for bench in "${benches[@]}"; do
    # "<bench>+dvs" entries run the base binary with --dvs; the bench
    # stamps the manifest identity with the matching "+dvs" suffix.
    extra_flags=()
    bin_name="$bench"
    if [[ "$bench" == *"+dvs" ]]; then
        bin_name="${bench%+dvs}"
        extra_flags=(--dvs)
    fi
    bin="$build/bench/$bin_name"
    if [[ ! -x "$bin" ]]; then
        echo "bench_regress: MISSING BINARY $bench" >&2
        status=1
        continue
    fi
    for backend in interp fast; do
        out="$workdir/$bench.json"
        flags=("${extra_flags[@]}")
        if [[ "$backend" == "fast" ]]; then
            out="$workdir/$bench+fast.json"
            flags+=(--backend=fast)
        fi
        if ! "$bin" "${flags[@]}" --json "$out" > /dev/null 2>&1; then
            echo "bench_regress: $bench ($backend) FAILED" >&2
            status=1
            continue
        fi
        if ! "$report" validate "$out" > /dev/null; then
            echo "bench_regress: $bench ($backend) wrote an invalid manifest" >&2
            status=1
        fi
    done
done
if [[ $status -ne 0 ]]; then
    echo "bench_regress: FAILED before aggregation" >&2
    exit $status
fi

suite="$build/BENCH_suite.json"
"$report" aggregate "$workdir" -o "$suite"

if [[ "$update" == "--update" ]]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$suite" "$baseline"
    echo "bench_regress: baseline updated ($baseline)"
    exit 0
fi

if [[ ! -f "$baseline" ]]; then
    echo "bench_regress: MISSING BASELINE $baseline (run with --update)" >&2
    exit 1
fi

# --ignore-time: the baseline's wall times were measured on whatever
# machine last ran --update; only table values gate here.
if "$report" diff "$baseline" "$suite" --ignore-time; then
    echo "bench_regress: ok (suite matches $baseline)"
else
    echo "bench_regress: FAILED — table values drifted from the baseline" >&2
    exit 1
fi
