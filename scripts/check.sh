#!/usr/bin/env bash
# Pre-merge gate: build and run the full test suite three times —
# plain, AddressSanitizer + UBSan, and UBSan alone (non-recovering) —
# then diff every figure binary against its committed golden snapshot
# on both simulator backends, with fast-backend differential shards
# under every build flavour. The ctest suites include the trace_smoke
# gate (scripts/trace_smoke.sh): --trace-out timelines from a bench
# and from pfitsd must validate via `pfits_report validate-trace`, so
# the tracing layer gets a sanitized pass too.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
    local dir="$1"; shift
    echo "=== configure $dir ($*) ==="
    cmake -B "$dir" -S "$repo" "$@"
    echo "=== build $dir ==="
    cmake --build "$dir" -j "$jobs"
    echo "=== ctest $dir ==="
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_suite "$repo/build" -DASAN=OFF

# Differential fuzz: every MiBench kernel plus 500 seeded random
# programs cross-executed on golden/arm32/packed/fits16, and the
# timing-invariant sweep over the paper's four configurations (see
# docs/VERIFICATION.md). Override the shard with PFITS_VERIFY_SEED to
# rotate coverage; a failure prints the seed and disassembly needed to
# replay it.
echo "=== differential verification (pfits_verify) ==="
"$repo/build/src/verify/pfits_verify" --count 500 --jobs "$jobs"

# The multi-tile chip shard: every kernel plus 500 random programs run
# as all four tiles of a chip over a small shared MSI L2 (forcing
# capacity back-invalidations), checked architecturally against
# independent single-core runs plus the coherence invariants. The
# one-tile chip cross-execution rides inside the default sweep above.
echo "=== differential verification (multi-tile chip shard) ==="
"$repo/build/src/verify/pfits_verify" --no-random --no-timing \
    --chip-count 500 --chip-tiles 4 --jobs "$jobs"

# A fast-backend-only shard on top of the interp+fast cross-execution
# above: diffProgram still compares against the golden interpreter, so
# this pins the fast loop in isolation (a divergence here bisects to
# one backend in a single run).
echo "=== differential verification (fast backend shard) ==="
"$repo/build/src/verify/pfits_verify" --count 200 --jobs "$jobs" \
    --backend fast

# The figure binaries must print byte-identical tables to their
# committed snapshots (tests/golden/): measurements are observers now,
# and this gate catches any instrumentation change leaking into
# results. Regenerate deliberately with golden_check.sh --update.
# The second sweep reruns every binary with --backend=fast against the
# SAME snapshots — the fast loop must reproduce the interpreter's
# tables byte for byte.
echo "=== golden snapshots ==="
"$repo/scripts/golden_check.sh" "$repo/build"
echo "=== golden snapshots (fast backend) ==="
"$repo/scripts/golden_check.sh" "$repo/build" --backend=fast

# Manifest-based regression tracking: every bench re-runs with --json,
# the manifests aggregate into BENCH_suite.json, and table values are
# diffed against tests/baseline/BENCH_baseline.json (value drift gates;
# wall times are machine-specific and ignored here — see
# docs/OBSERVABILITY.md "Regression tracking"). Regenerate deliberately
# with bench_regress.sh <build> --update.
echo "=== bench regression (manifests) ==="
"$repo/scripts/bench_regress.sh" "$repo/build"

# pfitsd crash/corruption fuzz: SIGKILL the daemon mid-write, truncate
# and bit-flip store entries, restart, and require quarantine plus
# results byte-identical to daemon-less runs (see docs/SERVICE.md).
echo "=== pfitsd crash fuzz ==="
"$repo/scripts/svc_crash_fuzz.sh" "$repo/build"

# The sanitized pass pins PFITS_JOBS=4 so the experiment engine's
# thread pool, SimCache and Runner run genuinely concurrent even on
# small CI hosts — races surface under TSan-less ASan as heap errors.
PFITS_JOBS=4 run_suite "$repo/build-asan" -DASAN=ON

# A smaller differential shard under ASan: the golden interpreter and
# the differential runner themselves get leak/overflow coverage. The
# fast-backend shard and golden sweep run sanitized too — the batched
# dispatch loop does its own pointer arithmetic over the predecoded
# trace and earns the same scrutiny as the interpreter.
echo "=== differential verification (ASan shard) ==="
PFITS_JOBS=4 "$repo/build-asan/src/verify/pfits_verify" --count 50
echo "=== differential verification (ASan fast backend shard) ==="
PFITS_JOBS=4 "$repo/build-asan/src/verify/pfits_verify" --count 50 \
    --backend fast

# Multi-tile chip shard under ASan: the round-robin quantum loop, the
# directory's recall paths and the per-tile memories all do pointer
# work worth sanitizing. (The directed MSI table and protocol fuzz in
# tests/test_coherence.cc already ran sanitized inside ctest above.)
echo "=== differential verification (ASan multi-tile chip shard) ==="
PFITS_JOBS=4 "$repo/build-asan/src/verify/pfits_verify" --no-random \
    --no-timing --chip-count 50 --chip-tiles 4
echo "=== golden snapshots (ASan, fast backend) ==="
"$repo/scripts/golden_check.sh" "$repo/build-asan" --backend=fast

# One crash-fuzz pass with the daemon and clients under ASan: the
# kill/restart/quarantine paths get leak and overflow coverage.
echo "=== pfitsd crash fuzz (ASan) ==="
PFITS_JOBS=4 "$repo/scripts/svc_crash_fuzz.sh" "$repo/build-asan"

PFITS_JOBS=4 run_suite "$repo/build-ubsan" -DUBSAN=ON

echo "=== differential verification (UBSan fast backend shard) ==="
PFITS_JOBS=4 "$repo/build-ubsan/src/verify/pfits_verify" --count 50 \
    --backend fast
echo "=== differential verification (UBSan multi-tile chip shard) ==="
PFITS_JOBS=4 "$repo/build-ubsan/src/verify/pfits_verify" --no-random \
    --no-timing --chip-count 50 --chip-tiles 4
echo "=== golden snapshots (UBSan, fast backend) ==="
"$repo/scripts/golden_check.sh" "$repo/build-ubsan" --backend=fast

echo "=== all checks passed (plain + sanitized + golden) ==="
