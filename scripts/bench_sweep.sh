#!/usr/bin/env bash
# Time the full 12-figure sweep through the parallel experiment engine:
# once serial (--jobs 1) and once at the host's default job count.
# Both runs print byte-identical tables; the wall-clock delta is the
# engine's speedup on this host (docs/PERFORMANCE.md records the
# trajectory). Each figure binary is a fresh process, so the SimCache
# is cold per figure — this measures the honest end-to-end cost.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

cmake -B "$build" -S "$repo" -DASAN=OFF >/dev/null
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" >/dev/null

figures=(fig03_static_mapping fig04_dynamic_mapping fig05_code_size
         fig06_power_breakdown fig07_switching_power fig08_internal_power
         fig09_leakage_power fig10_peak_power fig11_total_cache_power
         fig12_chip_power fig13_miss_rate fig14_ipc)

sweep() { # $@: extra flags for every figure binary
    for fig in "${figures[@]}"; do
        "$build/bench/$fig" --csv "$@"
    done
}

now_ms() { date +%s%3N; }

echo "=== serial sweep (--jobs 1) ==="
t0=$(now_ms)
sweep --jobs 1 > /tmp/pfits_sweep_serial.csv
serial_ms=$(( $(now_ms) - t0 ))

echo "=== parallel sweep (default jobs: $(nproc 2>/dev/null || echo '?')) ==="
t0=$(now_ms)
sweep > /tmp/pfits_sweep_parallel.csv
parallel_ms=$(( $(now_ms) - t0 ))

if ! cmp -s /tmp/pfits_sweep_serial.csv /tmp/pfits_sweep_parallel.csv; then
    echo "FAIL: serial and parallel sweeps diverge" >&2
    exit 1
fi

awk -v s="$serial_ms" -v p="$parallel_ms" 'BEGIN {
    printf "serial:   %7.1f s\n", s / 1000.0
    printf "parallel: %7.1f s\n", p / 1000.0
    printf "speedup:  %7.2fx (output byte-identical)\n", s / p
}'
