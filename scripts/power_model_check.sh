#!/usr/bin/env bash
# Power-model sanity gate: every power-reporting bench must emit tables
# free of NaN/Inf across the full default sweep. Guards the breakdown
# share and *W() accessors (a zero-energy or zero-second run must
# report 0, not NaN) and every new model axis — way memoization, the
# leakage policies, the DVS ladder — whose divisions are easy to get
# wrong on degenerate sweep points.
#
# Usage: power_model_check.sh <build-dir>
set -euo pipefail

if [[ $# -ne 1 ]]; then
    echo "usage: $0 <build-dir>" >&2
    exit 2
fi
build="$1"

# Bench list: every binary whose tables carry power-model outputs,
# including the skip-heavy geometry ablation (degenerate points) and
# the fig11 DVS ladder variant.
benches=(
    "fig06_power_breakdown"
    "fig07_switching_power"
    "fig08_internal_power"
    "fig09_leakage_power"
    "fig10_peak_power"
    "fig11_total_cache_power"
    "fig11_total_cache_power --dvs"
    "fig12_chip_power"
    "abl_cache_geometry"
    "ext_chip_power"
    "ext_dcache_power"
    "ext_way_memo"
    "ext_leakage_policy"
)

status=0
for entry in "${benches[@]}"; do
    # shellcheck disable=SC2086 — the entry deliberately splits into
    # binary name + flags.
    set -- $entry
    bench="$1"
    shift
    bin="$build/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "power_model_check: MISSING BINARY $bench" >&2
        status=1
        continue
    fi
    out="$("$bin" "$@" --csv 2>/dev/null)" || {
        echo "power_model_check: $entry FAILED to run" >&2
        status=1
        continue
    }
    # CSV only (notes suppressed): any standalone nan/inf token in a
    # cell is a model bug. -w keeps words like "internal" clean.
    if bad="$(grep -Eiw -- 'nan|-nan|inf|-inf' <<< "$out")"; then
        echo "power_model_check: NaN/Inf in $entry:" >&2
        head -10 <<< "$bad" >&2
        status=1
    else
        echo "power_model_check: ok $entry"
    fi
done

if [[ $status -ne 0 ]]; then
    echo "power_model_check: FAILED" >&2
fi
exit $status
