#!/usr/bin/env bash
# ctest smoke test: a bench binary's --trace-out timeline must be
# structurally valid Chrome trace-event JSON (checked by `pfits_report
# validate-trace`: balanced B/E spans, sorted timestamps, named
# tracks), and a pfitsd run with --trace-out must answer the `stats`
# wire op and flush a valid daemon-side trace at shutdown. Registered
# in tests/CMakeLists.txt as "trace_smoke", so it runs in the plain,
# ASan and UBSan ctest suites alike (scripts/check.sh).
#
# Usage: trace_smoke.sh <bench-binary> <pfitsd-binary> <pfits_report-binary>
set -euo pipefail

if [[ $# -ne 3 ]]; then
    echo "usage: $0 <bench-binary> <pfitsd-binary> <pfits_report-binary>" >&2
    exit 2
fi

bench="$1"
daemon="$2"
report="$3"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "trace: running $(basename "$bench") --trace-out"
"$bench" --trace-out "$workdir/bench.trace.json" > /dev/null

echo "trace: validate bench timeline"
"$report" validate-trace "$workdir/bench.trace.json"

echo "trace: engine spans present"
python3 - "$workdir/bench.trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
spans = {e.get("name") for e in doc["traceEvents"] if e.get("ph") == "B"}
missing = {"job", "prepare", "simulate"} - spans
if missing:
    print("missing expected spans: %s" % sorted(missing), file=sys.stderr)
    sys.exit(1)
EOF

echo "trace: daemon timeline + stats op"
sock="$workdir/d.sock"
"$daemon" --socket "$sock" --store "$workdir/store" \
    --trace-out "$workdir/daemon.trace.json" \
    > "$workdir/pfitsd.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
done
if [[ ! -S "$sock" ]]; then
    echo "trace: FAILED — pfitsd never came up" >&2
    cat "$workdir/pfitsd.log" >&2
    exit 1
fi

"$report" stats --daemon="$sock" > "$workdir/stats.json"
python3 - "$workdir/stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ok"] is True, doc
assert doc["uptime_ms"] >= 0, doc
assert isinstance(doc["store"], dict), doc
assert isinstance(doc["metrics"], dict), doc
EOF

# A clean shutdown must flush the daemon's trace (nonzero exit here
# means the write failed — the satellite contract for --trace-out).
kill -TERM "$daemon_pid"
wait "$daemon_pid"

echo "trace: validate daemon timeline"
"$report" validate-trace "$workdir/daemon.trace.json"

python3 - "$workdir/daemon.trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
spans = {e.get("name") for e in doc["traceEvents"] if e.get("ph") == "B"}
if "svc.request" not in spans:
    print("daemon trace has no svc.request span", file=sys.stderr)
    sys.exit(1)
EOF

echo "trace: ok"
