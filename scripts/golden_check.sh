#!/usr/bin/env bash
# Golden-snapshot gate: every figure/ablation/extension binary must
# print byte-identical output to its committed snapshot in
# tests/golden/. This guards the probe refactor's promise that
# instrumentation seams never change measured results.
#
# Usage: golden_check.sh <build-dir> [--update] [--backend=fast]
#   --update        regenerate the snapshots from the current binaries
#                   (review the diff before committing).
#   --backend=fast  run every binary on the fast simulator backend but
#                   diff against the SAME snapshots: the backends are
#                   result-equivalent by contract, so the committed
#                   interp tables are the fast backend's golden too.
set -euo pipefail

if [[ $# -lt 1 ]]; then
    echo "usage: $0 <build-dir> [--update] [--backend=fast]" >&2
    exit 2
fi

build="$1"
shift
update=""
backend_flags=()
tag=""
for arg in "$@"; do
    case "$arg" in
    --update) update="--update" ;;
    --backend=*)
        backend_flags=("$arg")
        tag=" (${arg#--backend=})"
        ;;
    *)
        echo "golden: unknown argument '$arg'" >&2
        exit 2
        ;;
    esac
done
if [[ "$update" == "--update" && ${#backend_flags[@]} -gt 0 ]]; then
    echo "golden: snapshots are regenerated on the default backend" \
         "only; drop --backend to --update" >&2
    exit 2
fi
repo="$(cd "$(dirname "$0")/.." && pwd)"
golden="$repo/tests/golden"

benches=(
    fig03_static_mapping
    fig04_dynamic_mapping
    fig05_code_size
    fig06_power_breakdown
    fig07_switching_power
    fig08_internal_power
    fig09_leakage_power
    fig10_peak_power
    fig11_total_cache_power
    fig12_chip_power
    fig13_miss_rate
    fig14_ipc
    abl_dictionary_sweep
    abl_register_sweep
    abl_cache_geometry
    abl_synthesis_features
    ext_chip_power
    ext_code_compression
    ext_fetch_packing
    ext_issue_width
    ext_dcache_power
    ext_profile_fidelity
    ext_fault_resilience
    ext_phase_behavior
    ext_way_memo
    ext_leakage_policy
    fig11_total_cache_power+dvs
)

mkdir -p "$golden"
status=0
for bench in "${benches[@]}"; do
    # "<bench>+dvs" entries run the base binary with --dvs and keep
    # their own snapshot; the base entry's snapshot is untouched.
    extra_flags=()
    bin_name="$bench"
    if [[ "$bench" == *"+dvs" ]]; then
        bin_name="${bench%+dvs}"
        extra_flags=(--dvs)
    fi
    bin="$build/bench/$bin_name"
    if [[ ! -x "$bin" ]]; then
        echo "golden: MISSING BINARY $bench" >&2
        status=1
        continue
    fi
    snapshot="$golden/$bench.txt"
    if [[ "$update" == "--update" ]]; then
        "$bin" "${extra_flags[@]}" 2>/dev/null > "$snapshot"
        echo "golden: updated $bench"
        continue
    fi
    if [[ ! -f "$snapshot" ]]; then
        echo "golden: MISSING SNAPSHOT $bench (run with --update)" >&2
        status=1
        continue
    fi
    if ! "$bin" "${extra_flags[@]}" "${backend_flags[@]}" 2>/dev/null |
            diff -u "$snapshot" - > /tmp/golden_diff_$$; then
        echo "golden: MISMATCH $bench$tag" >&2
        head -40 /tmp/golden_diff_$$ >&2
        status=1
    else
        echo "golden: ok $bench$tag"
    fi
    rm -f /tmp/golden_diff_$$
done

if [[ "$update" == "--update" ]]; then
    exit 0
fi
if [[ $status -ne 0 ]]; then
    echo "golden: FAILED — bench output drifted from tests/golden/" >&2
fi
exit $status
