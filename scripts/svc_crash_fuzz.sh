#!/usr/bin/env bash
# Crash/corruption fuzz for the pfitsd result store (docs/SERVICE.md,
# "Failure matrix"). Exercises every recovery path the store promises:
#
#  - SIGKILL the daemon while a sweep is writing entries: the client
#    must degrade to local simulation and the run must still exit 0,
#  - corrupt the store on disk (truncation, bit flips, stale temp
#    files, mis-named entries): a restarted daemon must quarantine
#    every damaged entry, serve the rest, and never serve rot,
#  - after every abuse, a sweep through the daemon must produce tables
#    identical to a daemon-less run (pfits_report diff --ignore-time).
#
# Run standalone against any build dir, or via scripts/check.sh (which
# also runs one pass against the ASan build).
#
# Usage: svc_crash_fuzz.sh <build-dir>
set -euo pipefail

if [[ $# -ne 1 ]]; then
    echo "usage: $0 <build-dir>" >&2
    exit 2
fi

build="$(cd "$1" && pwd)"
pfitsd="$build/src/svc/pfitsd"
bench="$build/bench/fig13_miss_rate"
report="$build/src/obs/pfits_report"
for bin in "$pfitsd" "$bench" "$report"; do
    [[ -x "$bin" ]] || { echo "fuzz: missing $bin" >&2; exit 2; }
done

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

sock="$workdir/pfitsd.sock"
store="$workdir/store"
unset PFITS_DAEMON PFITS_DAEMON_TIMEOUT_MS PFITS_DAEMON_RETRIES

start_daemon() {
    "$pfitsd" --socket "$sock" --store "$store" "$@" \
        >> "$workdir/pfitsd.log" &
    daemon_pid=$!
    for _ in $(seq 1 100); do
        [[ -S "$sock" ]] && return 0
        kill -0 "$daemon_pid" 2>/dev/null || break
        sleep 0.1
    done
    echo "fuzz: FAILED — pfitsd did not come up" >&2
    cat "$workdir/pfitsd.log" >&2
    exit 1
}

stop_daemon() {
    [[ -n "$daemon_pid" ]] || return 0
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
}

check_tables() { # <run-dir>: daemon results must equal daemon-less ones
    "$report" aggregate "$workdir/$1" -o "$workdir/$1-suite.json" \
        > /dev/null 2>&1
    "$report" diff --ignore-time \
        "$workdir/local-suite.json" "$workdir/$1-suite.json"
}

echo "fuzz: daemon-less reference sweep"
mkdir -p "$workdir/local"
"$bench" --json "$workdir/local/run.json" > /dev/null
"$report" aggregate "$workdir/local" -o "$workdir/local-suite.json" \
    > /dev/null 2>&1

echo "fuzz: warm the store"
start_daemon
mkdir -p "$workdir/warm"
"$bench" --daemon="$sock" --json "$workdir/warm/run.json" > /dev/null
check_tables warm
entries=$(ls "$store"/*.json 2>/dev/null | wc -l)
echo "fuzz: store holds $entries entries"
[[ "$entries" -gt 0 ]] || { echo "fuzz: FAILED — empty store" >&2; exit 1; }

echo "fuzz: SIGKILL the daemon mid-sweep"
# Empty the store (keep the directory) so the next sweep re-simulates
# and re-writes every entry — maximizing the chance the kill lands
# mid-write. Stall each compute so the sweep is still in flight.
stop_daemon
rm -f "$store"/*.json
start_daemon --test-compute-delay-ms 50
mkdir -p "$workdir/killed"
PFITS_DAEMON_TIMEOUT_MS=5000 PFITS_DAEMON_RETRIES=1 \
    "$bench" --daemon="$sock" --json "$workdir/killed/run.json" \
    > /dev/null &
bench_pid=$!
sleep 0.7
kill -9 "$daemon_pid"
daemon_pid=""
if ! wait "$bench_pid"; then
    echo "fuzz: FAILED — sweep died with the daemon" >&2
    exit 1
fi
python3 - "$workdir/killed/run.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
print(f"fuzz: killed daemon: fallbacks={m.get('svc.fallbacks', 0)} "
      f"retries={m.get('svc.retries', 0)}")
assert m.get("svc.fallbacks", 0) > 0, \
    "killing the daemon must surface as fallbacks"
EOF
check_tables killed

echo "fuzz: corrupt the store on disk"
# Re-warm so there are entries to damage, then stop the daemon and
# vandalize: truncate one entry, flip a byte in another, drop a stale
# temp file and a mis-named copy.
start_daemon
mkdir -p "$workdir/rewarm"
"$bench" --daemon="$sock" --json "$workdir/rewarm/run.json" > /dev/null
stop_daemon
mapfile -t victims < <(ls "$store"/*.json | head -3)
[[ ${#victims[@]} -ge 2 ]] || { echo "fuzz: too few entries" >&2; exit 1; }
truncate -s 17 "${victims[0]}"
printf 'X' | dd of="${victims[1]}" bs=1 seek=40 conv=notrunc \
    status=none
cp "${victims[1]}" "$store/$(basename "${victims[0]}").tmp.12345.0"
if [[ ${#victims[@]} -ge 3 ]]; then
    cp "${victims[2]}" \
        "$store/0000000000000bad-0000000000000bad-0000000000000bad-0000000000000bad.json"
fi

echo "fuzz: restart; recovery must quarantine the damage"
start_daemon
mkdir -p "$workdir/recovered"
"$bench" --daemon="$sock" --json "$workdir/recovered/run.json" \
    > /dev/null
python3 - "$workdir/recovered/run.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
q = m.get("svc.store.quarantined", {}).get("value", 0)
print(f"fuzz: after restart: quarantined={q}")
assert q >= 2, f"expected >=2 quarantined entries, saw {q}"
EOF
quarantined=$(ls "$store/quarantine" 2>/dev/null | wc -l)
echo "fuzz: quarantine dir holds $quarantined files"
[[ "$quarantined" -ge 2 ]] || {
    echo "fuzz: FAILED — damaged entries were not preserved" >&2
    exit 1
}
if ls "$store"/*.tmp.* > /dev/null 2>&1; then
    echo "fuzz: FAILED — stale temp file survived recovery" >&2
    exit 1
fi
check_tables recovered

stop_daemon
echo "fuzz: ok"
