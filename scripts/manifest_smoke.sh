#!/usr/bin/env bash
# ctest smoke test: one bench binary's --json manifest must validate
# against the documented schema, aggregate into a suite document, and
# self-diff clean (exit 0); an injected drift must make the diff exit
# nonzero. Registered in tests/CMakeLists.txt as "manifest_smoke".
#
# Usage: manifest_smoke.sh <bench-binary> <pfits_report-binary>
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <bench-binary> <pfits_report-binary>" >&2
    exit 2
fi

bench="$1"
report="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "smoke: running $(basename "$bench") --json"
"$bench" --json "$workdir/run.json" > /dev/null

echo "smoke: validate manifest"
"$report" validate "$workdir/run.json"

echo "smoke: aggregate into suite"
"$report" aggregate "$workdir" -o "$workdir/suite.json"
"$report" validate "$workdir/suite.json"

echo "smoke: self-diff must be clean"
"$report" diff "$workdir/suite.json" "$workdir/suite.json"

echo "smoke: injected drift must gate"
# Perturb the first numeric table cell (manifest tables store cells as
# strings like "47.1"); the diff must exit nonzero.
python3 - "$workdir/suite.json" "$workdir/drifted.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for bench in doc["benches"]:
    for table in bench["tables"]:
        for row in table["rows"]:
            for i, cell in enumerate(row[1:], start=1):
                try:
                    v = float(cell.rstrip("%"))
                except ValueError:
                    continue
                row[i] = str(v * 2 + 1)
                json.dump(doc, open(sys.argv[2], "w"))
                sys.exit(0)
print("no numeric cell found to perturb", file=sys.stderr)
sys.exit(1)
EOF
if "$report" diff "$workdir/suite.json" "$workdir/drifted.json"; then
    echo "smoke: FAILED — drifted suite diffed clean" >&2
    exit 1
fi

echo "smoke: unknown bench flag must be rejected"
if "$bench" --cvs > /dev/null 2>&1; then
    echo "smoke: FAILED — unknown flag was accepted" >&2
    exit 1
fi

echo "smoke: ok"
