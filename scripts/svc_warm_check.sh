#!/usr/bin/env bash
# ctest gate for the pfitsd warm-store contract (docs/SERVICE.md):
#  1. a bench sweep through a fresh daemon produces the same tables as
#     a daemon-less run (pfits_report diff --ignore-time),
#  2. a second identical sweep performs ZERO fresh simulations — every
#     request is answered from the daemon's store (svc.store.hits ==
#     svc.requests, simcache.misses == 0 in the manifest),
#  3. with the daemon stopped, --daemon runs still exit 0 and count
#     their degradation (svc.fallbacks > 0).
# Registered in tests/CMakeLists.txt as "svc_warm_check".
#
# Usage: svc_warm_check.sh <pfitsd> <bench-binary> <pfits_report>
set -euo pipefail

if [[ $# -ne 3 ]]; then
    echo "usage: $0 <pfitsd> <bench-binary> <pfits_report>" >&2
    exit 2
fi

pfitsd="$1"
bench="$2"
report="$3"
workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
    [[ -n "$daemon_pid" ]] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

sock="$workdir/pfitsd.sock"
store="$workdir/store"

# A bench process must not pick up an ambient daemon configuration.
unset PFITS_DAEMON PFITS_DAEMON_TIMEOUT_MS PFITS_DAEMON_RETRIES

echo "warm: daemon-less reference run"
mkdir -p "$workdir/local"
"$bench" --json "$workdir/local/run.json" > /dev/null

echo "warm: starting pfitsd"
"$pfitsd" --socket "$sock" --store "$store" > "$workdir/pfitsd.log" &
daemon_pid=$!
for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "warm: FAILED — pfitsd died during startup" >&2
        cat "$workdir/pfitsd.log" >&2
        exit 1
    }
    sleep 0.1
done
[[ -S "$sock" ]] || { echo "warm: FAILED — no socket" >&2; exit 1; }

echo "warm: first sweep (populates the store)"
mkdir -p "$workdir/first"
"$bench" --daemon="$sock" --json "$workdir/first/run.json" > /dev/null

echo "warm: second sweep (must be served entirely from the store)"
mkdir -p "$workdir/second"
"$bench" --daemon="$sock" --json "$workdir/second/run.json" > /dev/null

python3 - "$workdir/second/run.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
requests = m.get("svc.requests", 0)
hits = m.get("svc.store.hits", 0)
misses = m.get("simcache.misses", 0)
fallbacks = m.get("svc.fallbacks", 0)
print(f"warm: second sweep: requests={requests} store.hits={hits} "
      f"simcache.misses={misses} fallbacks={fallbacks}")
assert requests > 0, "second sweep made no daemon requests"
assert hits == requests, "a warm store must answer every request"
assert misses == 0, "a warm store must avoid local simulation"
assert fallbacks == 0, "no degradation expected with a live daemon"
EOF

echo "warm: daemon results must equal daemon-less results"
# --ignore-metrics: this diff crosses deployment modes, where the set
# of touched instruments legitimately differs (a warm sweep performs
# no fresh sims and adds svc.* counters) — the contract here is that
# the RESULT tables match, not the instrumentation.
for d in local second; do
    "$report" aggregate "$workdir/$d" -o "$workdir/$d-suite.json"
done
"$report" diff --ignore-time --ignore-metrics \
    "$workdir/local-suite.json" "$workdir/second-suite.json"

echo "warm: stopping pfitsd; --daemon must degrade, not fail"
kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
mkdir -p "$workdir/down"
PFITS_DAEMON_TIMEOUT_MS=2000 PFITS_DAEMON_RETRIES=1 \
    "$bench" --daemon="$sock" --json "$workdir/down/run.json" \
    > /dev/null

python3 - "$workdir/down/run.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
fallbacks = m.get("svc.fallbacks", 0)
print(f"warm: dead daemon: fallbacks={fallbacks}")
assert fallbacks > 0, "a dead daemon must be counted as fallbacks"
EOF

echo "warm: dead-daemon results must also match"
"$report" aggregate "$workdir/down" -o "$workdir/down-suite.json"
"$report" diff --ignore-time --ignore-metrics \
    "$workdir/local-suite.json" "$workdir/down-suite.json"

echo "warm: ok"
